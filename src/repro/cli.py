"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered dataset analogs and their Table II statistics.
``experiments``
    List every paper table/figure, the benchmark that regenerates it, and the
    modules involved (the DESIGN.md experiment index, from code).
``run``
    Train baseline and/or prefetch pipelines on one dataset and print a
    Fig. 6-style comparison; optionally save JSON traces.  ``--pipeline``
    runs any single pipeline registered in
    :data:`repro.training.pipelines.PIPELINES` instead.  ``--cluster``
    switches to the scenario-driven :class:`ClusterEngine` path:
    ``repro run --cluster --scenario skewed-partitions`` runs a named
    workload from :data:`repro.scenarios.SCENARIOS` and prints per-trainer
    and cluster-level telemetry (critical path, barrier wait, hit rates).
``scenarios``
    List the registered cluster scenarios and their deployment notes;
    ``--markdown`` emits the ``docs/SCENARIOS.md`` catalog instead (CI
    regenerates it and fails on drift).
``serve``
    Run an online-inference serving scenario (``steady-poisson``,
    ``diurnal-cache-drift``, ``flash-crowd-burst``) through the event-driven
    :class:`~repro.serving.engine.InferenceClusterEngine` and print the
    latency/SLO/cache report.  ``repro run --cluster --scenario <serving
    scenario>`` routes here too, so the CI smoke matrix runs one command
    shape for every scenario.
``sweep``
    Grid-search (f_h, γ, Δ) and print the Table IV-style optimum.
``tune``
    Sweep a scenario's full knob surface (sampler, rpc, cache policies,
    engine/sync, serving parameters — any :data:`repro.tuning.AXES` axis)
    with a grid or seeded-random strategy, rank candidates by an
    :data:`repro.tuning.OBJECTIVES` score, and optionally freeze the winner
    as a ``presets/*.json`` preset; ``repro run --preset NAME`` replays it
    (CLI flags beat the preset, the preset beats the scenario recipe).
``explain``
    Replay a scenario with the scored cache policies and print why one node
    was admitted, rejected, or evicted — every decision with its score,
    confidence bounds, threshold, mode, and reason.  Replays are
    deterministic: the same ``--scenario``/``--seed`` reproduces the exact
    decision ledger bit-identically.

Execution backends are selected with ``--engine`` (see
:data:`repro.training.engines.ENGINES`): ``repro run --engine async --sync
bounded-staleness --staleness 2`` runs the event-driven backend with the
chosen gradient-sync policy (``--engine async`` implies ``--cluster``).
``--execution-backend process-pool --workers N`` additionally fans trainer
steps out to worker processes over shared-memory stores (see
:data:`repro.training.backends.EXECUTION_BACKENDS`) — same reports bit for
bit, parallel wall clock; ``--workers`` without the pool backend is an error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__, viz
from repro.cache.config import CacheConfig
from repro.cache.policies import ADMISSION_POLICIES, CACHE_EVICTION_POLICIES
from repro.cache.scoring import capture_decisions
from repro.core.config import PrefetchConfig
from repro.core.eviction import EVICTION_POLICIES, build_eviction_policy
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.distributed.rpc import RPC_CHANNELS
from repro.events.sync import SYNC_POLICIES
from repro.graph.datasets import available_datasets, load_dataset
from repro.sampling.neighbor_sampler import SAMPLERS
from repro.scenarios import (
    SCENARIOS,
    UNSET,
    available_scenarios,
    catalog_markdown,
    serving_scenarios,
)
from repro.serving import ARRIVALS
from repro.training.backends import EXECUTION_BACKENDS
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.engines import ENGINES
from repro.training.pipelines import PIPELINES
from repro.training.sweep import find_optimal, run_parameter_sweep
from repro.training.trace import list_experiments, save_trace
from repro.tuning import (
    OBJECTIVES,
    SEARCH_STRATEGIES,
    Preset,
    SearchSpace,
    TuneRunner,
    load_preset,
)
from repro.tuning.space import parse_axis_values
from repro.utils.logging_utils import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MassiveGNN reproduction: prefetch/eviction for distributed GNN training",
    )
    parser.add_argument(
        "--version", action="version", version=__version__,
        help="print the repro package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogs and their statistics")
    sub.add_parser("experiments", help="list the paper's tables/figures and their bench targets")
    scenarios = sub.add_parser("scenarios", help="list the registered cluster scenarios")
    scenarios.add_argument(
        "--markdown", action="store_true",
        help="emit the docs/SCENARIOS.md catalog (markdown table) instead of the "
             "plain-text listing",
    )

    # Flags shared with --cluster default to None so that only explicitly
    # passed values override a scenario's recipe; the plain run path fills in
    # the documented defaults itself.
    run = sub.add_parser("run", help="train baseline and/or prefetch pipelines")
    run.add_argument(
        "--dataset", default=None, choices=available_datasets(),
        help="dataset analog (default: products; with --cluster: the scenario's dataset)",
    )
    run.add_argument("--scale", type=float, default=None,
                     help="dataset scale multiplier (default: 0.25; --cluster: scenario's)")
    run.add_argument("--mode", default="both", choices=["baseline", "prefetch", "both"],
                     help="which pipelines to compare (ignored with --cluster)")
    run.add_argument(
        "--pipeline", default=None, choices=PIPELINES.names(),
        help="run one registered pipeline instead of the --mode comparison",
    )
    run.add_argument(
        "--eviction-policy", default=None, choices=EVICTION_POLICIES.names(),
        help="eviction policy for the prefetch buffer (default: the config's, score-threshold)",
    )
    run.add_argument(
        "--sampler", default=None, choices=SAMPLERS.names(),
        help="neighbor-sampler registry key (default: legacy). 'vectorized' is the "
             "batched random-key fan-out draw; 'loop' is its per-node reference twin "
             "(bit-identical output and RNG stream)",
    )
    run.add_argument(
        "--rpc", default=None, choices=RPC_CHANNELS.names(),
        help="RPC channel registry key (default: per-call). 'batched' coalesces a "
             "step's remote pulls per owning partition machine-wide and merges "
             "duplicate ids (stats report logical vs. wire requests separately)",
    )
    run.add_argument(
        "--cache-tiers", type=int, default=None, choices=[1, 2], dest="cache_tiers",
        help="tiered feature cache: 1 = per-trainer hot tier, 2 = + machine-shared "
             "tier (selects the 'tiered-cache' pipeline unless --pipeline is given; "
             "the trainer row budget still comes from --halo-fraction)",
    )
    run.add_argument(
        "--admission", default=None, choices=ADMISSION_POLICIES.names(),
        help="hot-tier admission policy (default: static-degree — the pre-tier "
             "static cache behavior)",
    )
    run.add_argument(
        "--eviction", default=None, choices=CACHE_EVICTION_POLICIES.names(),
        help="hot-tier eviction policy (default: none; distinct from "
             "--eviction-policy, which governs the prefetch buffer's Algorithm 2)",
    )
    run.add_argument(
        "--adaptive-cache", action="store_true",
        help="enable the adaptive capacity controller (re-splits hot/shared tier "
             "budgets from per-epoch hit rates; needs --cache-tiers 2)",
    )
    run.add_argument(
        "--engine", default=None, choices=ENGINES.names(),
        help="cluster execution backend (default: the scenario's, lockstep). "
             "'async' is the event-driven backend (priority-queue event loop, "
             "pluggable gradient sync); passing it implies --cluster",
    )
    run.add_argument(
        "--sync", default=None, choices=SYNC_POLICIES.names(),
        help="gradient synchronization policy for --engine async "
             "(default: the scenario's, allreduce-barrier — bit-identical to the "
             "lockstep engine)",
    )
    run.add_argument(
        "--staleness", type=int, default=None,
        help="max rounds a trainer may run ahead with --sync bounded-staleness "
             "(default: the scenario's, 1)",
    )
    run.add_argument(
        "--sync-period", type=int, default=None, dest="sync_period",
        help="steps between model averages with --sync local-sgd "
             "(default: the scenario's, 4)",
    )
    run.add_argument(
        "--no-elastic", action="store_true", dest="no_elastic",
        help="strip the scenario's elastic membership schedule (ElasticSpec): "
             "every trainer stays active for the whole run — the no-elasticity "
             "baseline the elastic scenarios are compared against",
    )
    run.add_argument(
        "--execution-backend", default=None, choices=EXECUTION_BACKENDS.names(),
        dest="execution_backend",
        help="how trainer steps execute (default: the scenario's, inline). "
             "'process-pool' fans whole machines out to worker processes over "
             "shared-memory graph/feature stores — bit-identical reports, "
             "parallel wall clock; passing it implies --cluster",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --execution-backend process-pool (default: "
             "one per machine; clamped to the machine count)",
    )
    run.add_argument(
        "--cluster", action="store_true",
        help="run a scenario-driven cluster workload through the ClusterEngine "
             "(prints per-trainer and critical-path telemetry; --mode is ignored, "
             "use --pipeline to override the scenario's pipeline)",
    )
    run.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="named cluster workload for --cluster (default: uniform); the scenario's "
             "recipe provides every default, and only explicitly passed flags override it",
    )
    run.add_argument("--backend", default=None, choices=["cpu", "gpu"],
                     help="cost-model backend (default: cpu; --cluster: scenario's)")
    run.add_argument("--machines", type=int, default=None,
                     help="simulated machines (default: 2; --cluster: scenario's)")
    run.add_argument("--trainers-per-machine", type=int, default=None,
                     help="trainers per machine (default: 2; --cluster: scenario's)")
    run.add_argument("--batch-size", type=int, default=None,
                     help="seeds per minibatch (default: 128; --cluster: scenario's)")
    run.add_argument("--fanouts", type=int, nargs="+", default=None,
                     help="per-layer neighbor fanouts (default: 10 25; --cluster: scenario's)")
    run.add_argument("--epochs", type=int, default=None,
                     help="training epochs (default: 3; --cluster: scenario's)")
    run.add_argument("--arch", default="sage", choices=["sage", "gat"])
    run.add_argument("--hidden-dim", type=int, default=64)
    run.add_argument("--halo-fraction", type=float, default=None,
                     help="prefetch buffer capacity as a halo fraction "
                          "(default: 0.35; --cluster: scenario's)")
    run.add_argument("--gamma", type=float, default=None,
                     help="eviction-score decay (default: 0.995; --cluster: scenario's)")
    run.add_argument("--delta", type=int, default=None,
                     help="eviction interval (default: 16; --cluster: scenario's)")
    run.add_argument("--no-eviction", action="store_true")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--evaluate", action="store_true", help="score validation/test accuracy")
    run.add_argument("--trace-dir", type=Path, default=None, help="write JSON traces here")
    run.add_argument(
        "--preset", default=None, metavar="NAME",
        help="run a tuned configuration frozen by `repro tune --emit-preset` "
             "(a committed presets/*.json name or an explicit path). The preset "
             "supplies the scenario and its winning overrides; implies --cluster. "
             "Explicit flags still win: CLI beats preset beats scenario recipe",
    )
    run.add_argument(
        "--presets-dir", type=Path, default=None, dest="presets_dir",
        help="directory to resolve --preset names in (default: the repository's "
             "presets/)",
    )

    serve = sub.add_parser("serve", help="run an online-inference serving scenario")
    serve.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="serving scenario to run (default: steady-poisson); training "
             "scenarios are rejected — see the Execution column of `repro scenarios`",
    )
    serve.add_argument(
        "--arrival", default=None, choices=ARRIVALS.names(),
        help="override the scenario's arrival process (see repro.serving.ARRIVALS)",
    )
    serve.add_argument("--requests", type=int, default=None,
                       help="number of requests to serve (default: the scenario's)")
    serve.add_argument("--rate", type=float, default=None, dest="rate",
                       help="offered load in requests/s (default: the scenario's)")
    serve.add_argument("--slo-ms", type=float, default=None, dest="slo_ms",
                       help="latency SLO in milliseconds (default: the scenario's)")
    serve.add_argument("--scale", type=float, default=None,
                       help="dataset scale multiplier (default: the scenario's)")
    serve.add_argument("--machines", type=int, default=None,
                       help="simulated machines (default: the scenario's)")
    serve.add_argument("--trainers-per-machine", type=int, default=None,
                       help="serving workers per machine (default: the scenario's)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--trace-dir", type=Path, default=None,
                       help="write the full ServingReport JSON here")

    explain = sub.add_parser(
        "explain",
        help="replay a scenario with the scored cache policies and explain one "
             "node's admit/evict/reject decisions",
    )
    explain.add_argument(
        "--scenario", default="hot-set-drift", choices=available_scenarios(),
        help="scenario to replay (default: hot-set-drift)",
    )
    explain.add_argument(
        "--node-id", type=int, default=None, dest="node_id",
        help="global node id to explain (default: the node with the most "
             "recorded decisions in the replay)",
    )
    explain.add_argument(
        "--admission", default="scored",
        choices=[n for n in ADMISSION_POLICIES.names() if n.startswith("scored")],
        help="scored admission variant to replay with (default: scored — the "
             "conservative mode)",
    )
    explain.add_argument(
        "--eviction", default="scored", choices=["scored", "lru", "lfu", "clock"],
        help="hot-tier eviction policy for the replay (default: scored — evict "
             "lowest upper bound; decisions are only recorded for scored policies)",
    )
    explain.add_argument(
        "--cache-tiers", type=int, default=1, choices=[1, 2], dest="cache_tiers",
        help="tier stack shape for the replay (default: 1)",
    )
    explain.add_argument("--epochs", type=int, default=None,
                         help="override the scenario's epoch count")
    explain.add_argument("--scale", type=float, default=None,
                         help="dataset scale multiplier (default: the scenario's)")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--limit", type=int, default=20,
        help="print at most this many decisions, most recent last (0 = all)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the node's decisions as JSON lines instead of a table",
    )

    sweep = sub.add_parser("sweep", help="grid-search the prefetch parameters")
    sweep.add_argument("--dataset", default="products", choices=available_datasets())
    sweep.add_argument("--scale", type=float, default=0.25)
    sweep.add_argument("--backend", default="cpu", choices=["cpu", "gpu"])
    sweep.add_argument("--machines", type=int, default=2)
    sweep.add_argument("--batch-size", type=int, default=128)
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--halo-fractions", type=float, nargs="+", default=[0.15, 0.35, 0.5])
    sweep.add_argument("--gammas", type=float, nargs="+", default=[0.95, 0.995])
    sweep.add_argument("--deltas", type=int, nargs="+", default=[8, 64])
    sweep.add_argument("--seed", type=int, default=0)

    tune = sub.add_parser(
        "tune",
        help="sweep a scenario's knob surface, rank configurations by an "
             "objective, and optionally freeze the winner as a preset",
    )
    tune.add_argument(
        "--scenario", default="uniform", choices=available_scenarios(),
        help="scenario whose knob surface is searched (default: uniform)",
    )
    tune.add_argument(
        "--objective", default=None, choices=OBJECTIVES.names(),
        help="score to rank candidates by (default: serving-p99-ms for serving "
             "scenarios, critical-path-s otherwise)",
    )
    tune.add_argument(
        "--strategy", default="grid", choices=SEARCH_STRATEGIES.names(),
        help="candidate ordering: 'grid' walks the exact cartesian product in "
             "axis order (seed-independent); 'random' is a seeded permutation "
             "of the same grid (budget >= space size still covers every point)",
    )
    tune.add_argument(
        "--budget", type=int, default=None,
        help="max candidates to evaluate (default: the whole space)",
    )
    tune.add_argument(
        "--axis", action="append", default=None, metavar="NAME=V1[,V2...]",
        help="add a search axis (repeatable; replaces the scenario's default "
             "space). Axis names are the AXES keys: scenario fields like "
             "'sync', 'staleness', 'rpc' or dotted sub-config fields like "
             "'cache.eviction', 'serving.rate_rps'; values are validated "
             "eagerly against the owning registry or numeric type",
    )
    tune.add_argument("--scale", type=float, default=None,
                      help="dataset scale for every evaluation (default: the scenario's)")
    tune.add_argument("--epochs", type=int, default=None,
                      help="epochs for every evaluation (default: the scenario's)")
    tune.add_argument("--seed", type=int, default=0,
                      help="seed shared by every candidate run and the random strategy")
    tune.add_argument(
        "--parallel", type=int, default=1,
        help="evaluate candidates across this many worker processes "
             "(reports are bit-identical to the serial run)",
    )
    tune.add_argument(
        "--emit-preset", default=None, metavar="NAME", dest="emit_preset",
        help="freeze the winning configuration as <presets-dir>/NAME.json "
             "with full sweep provenance",
    )
    tune.add_argument(
        "--presets-dir", type=Path, default=None, dest="presets_dir",
        help="where --emit-preset writes (default: the repository's presets/)",
    )
    tune.add_argument(
        "--json", action="store_true",
        help="emit the full ranked TuneReport as canonical JSON (byte-stable "
             "for a fixed scenario/space/objective/strategy/budget/seed)",
    )
    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_datasets() -> int:
    rows = []
    for name in available_datasets():
        dataset = load_dataset(name, scale=0.1, seed=0)
        stats = dataset.summary()
        spec = dataset.spec
        rows.append(
            [name, spec.paper_num_nodes or "-", spec.paper_num_edges or "-",
             int(stats["num_nodes"]), int(stats["num_edges"]),
             int(stats["feature_dim"]), int(stats["num_classes"]), round(stats["avg_degree"], 1)]
        )
    print(format_table(
        ["dataset", "paper |V|", "paper |E|", "analog |V| (scale=0.1)", "analog |E|",
         "feat dim", "classes", "avg deg"],
        rows,
    ))
    return 0


def _cmd_experiments() -> int:
    rows = [
        [spec.experiment_id, spec.paper_reference, spec.description, spec.bench_target]
        for spec in list_experiments()
    ]
    print(format_table(["id", "paper", "description", "bench target"], rows))
    return 0


def _cmd_scenarios(markdown: bool = False) -> int:
    if markdown:
        print(catalog_markdown())
        return 0
    rows = []
    for name in available_scenarios():
        scenario = SCENARIOS.build(name)
        rows.append([
            name,
            scenario.dataset,
            scenario.partition_method,
            "heterogeneous" if scenario.compute_multipliers else "homogeneous",
            scenario.execution,
            scenario.pipeline,
            scenario.description,
        ])
    print(format_table(
        ["scenario", "dataset", "partitioning", "hardware", "execution", "pipeline",
         "description"],
        rows,
    ))
    return 0


def _build_cache_config(args: argparse.Namespace) -> Optional[CacheConfig]:
    """CacheConfig from the --cache-* flags; None when none were passed.

    Invalid combinations (e.g. ``--adaptive-cache`` without
    ``--cache-tiers 2``) exit with the config's own diagnostic rather than
    being silently ignored.
    """
    if (args.cache_tiers is None and args.admission is None
            and args.eviction is None and not args.adaptive_cache):
        return None
    # An explicit --eviction with the closed default admission would be
    # inert (static-degree admits nothing at runtime, so eviction never
    # triggers); default admission to "always" in that case so the chosen
    # policy actually runs.  An explicit --admission always wins.
    admission = args.admission
    if admission is None:
        admission = "always" if args.eviction not in (None, "none") else "static-degree"
    try:
        return CacheConfig(
            tiers=args.cache_tiers if args.cache_tiers is not None else 1,
            admission=admission,
            eviction=args.eviction or "none",
            adaptive=bool(args.adaptive_cache),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _reject_cacheless_pipeline(pipeline, cache_config) -> bool:
    """True (after printing an error) when --cache-* flags would be ignored.

    Only the tiered-cache pipeline (and prefetch, via the machine-shared
    tier) consume a CacheConfig; silently dropping the flags on baseline /
    static-cache would let users believe they measured a cache they never
    built.
    """
    if cache_config is None or pipeline is None:
        return False
    resolved = PIPELINES.resolve(pipeline)
    if resolved in ("baseline", "static-cache"):
        print(
            f"error: --cache-tiers/--admission/--eviction/--adaptive-cache have no "
            f"effect on the {resolved!r} pipeline; use --pipeline tiered-cache "
            f"(or prefetch, which consumes the machine-shared tier)",
            file=sys.stderr,
        )
        return True
    return False


def _cmd_run_cluster(
    args: argparse.Namespace,
    base_scenario=None,
) -> int:
    """``repro run --cluster --scenario <name>``: scenario-driven cluster run.

    The scenario recipe is the source of every default; only flags the user
    actually passed (non-``None``) override it.  ``base_scenario`` (the
    ``--preset`` path) replaces the registry lookup with an already-overridden
    scenario, keeping the precedence order: CLI flags beat the preset, the
    preset beats the scenario recipe.
    """
    import dataclasses

    if base_scenario is None:
        base_scenario = SCENARIOS.build(args.scenario or "uniform")
    scenario = base_scenario.with_overrides(
        dataset=args.dataset,
        scale=args.scale,
        num_machines=args.machines,
        trainers_per_machine=args.trainers_per_machine,
        batch_size=args.batch_size,
        fanouts=tuple(args.fanouts) if args.fanouts else None,
        backend=args.backend,
        epochs=args.epochs,
        sampler=args.sampler,
        rpc=args.rpc,
        engine=args.engine,
        sync=args.sync,
        staleness=args.staleness,
        sync_period=args.sync_period,
        execution_backend=args.execution_backend,
        workers=args.workers,
        elastic=UNSET if args.no_elastic else None,
    )
    # A sync-policy knob only has meaning on the event-driven backend; flip
    # the engine rather than letting the lockstep factory reject it when the
    # user's intent is unambiguous.
    if args.engine is None and (
        args.sync is not None or args.staleness is not None or args.sync_period is not None
    ):
        scenario = scenario.with_overrides(engine="async")
    # A knob that the effective sync policy does not consume would be
    # silently inert (sync_policy_options only forwards staleness to
    # bounded-staleness and sync_period to local-sgd); reject it instead of
    # letting the user believe they measured a policy they never selected.
    resolved_sync = SYNC_POLICIES.resolve(scenario.sync)
    if args.staleness is not None and resolved_sync != "bounded-staleness":
        print(f"error: --staleness only applies to the 'bounded-staleness' sync "
              f"policy (effective policy: {resolved_sync!r}); pass "
              f"--sync bounded-staleness", file=sys.stderr)
        return 2
    if args.sync_period is not None and resolved_sync != "local-sgd":
        print(f"error: --sync-period only applies to the 'local-sgd' sync policy "
              f"(effective policy: {resolved_sync!r}); pass --sync local-sgd",
              file=sys.stderr)
        return 2
    # A worker count is meaningless on the in-process backend; reject it
    # rather than silently running serial and calling it a pool measurement.
    resolved_exec = EXECUTION_BACKENDS.resolve(scenario.execution_backend)
    if args.workers is not None and resolved_exec == "inline":
        print(f"error: --workers only applies to the 'process-pool' execution "
              f"backend (effective backend: {resolved_exec!r}); pass "
              f"--execution-backend process-pool", file=sys.stderr)
        return 2
    prefetch_tuning = {
        key: value
        for key, value in (
            ("halo_fraction", args.halo_fraction),
            ("gamma", args.gamma),
            ("delta", args.delta),
            ("eviction_policy", args.eviction_policy),
        )
        if value is not None
    }
    if args.no_eviction:
        prefetch_tuning["eviction_enabled"] = False
    prefetch_config = None
    if prefetch_tuning:
        # The eviction policy rides along as a registry *name* so each
        # trainer's prefetcher builds its own instance (own RNG stream) —
        # a shared policy object would couple the trainers' evictions.
        prefetch_config = dataclasses.replace(
            scenario.prefetch_config or PrefetchConfig(), **prefetch_tuning
        )
    if ENGINES.resolve(scenario.engine) == "serving":
        # Serving scenarios share this command shape (one CI smoke command for
        # every scenario) but report latency/SLO, not epochs — delegate.
        cache_config = _build_cache_config(args)
        pipeline = args.pipeline
        if pipeline is None and cache_config is not None:
            pipeline = "tiered-cache"
        if _reject_cacheless_pipeline(pipeline, cache_config):
            return 2
        return _run_serving(
            scenario, seed=args.seed, trace_dir=args.trace_dir,
            pipeline=pipeline, prefetch_config=prefetch_config,
            cache_config=cache_config,
        )
    try:
        workload = scenario.materialize(
            seed=args.seed,
            train_config=TrainConfig(
                epochs=scenario.epochs, arch=args.arch, hidden_dim=args.hidden_dim,
                evaluate=args.evaluate, seed=args.seed,
            ),
        )
    except ValueError as exc:
        # e.g. --engine lockstep combined with an async-only sync policy.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if resolved_exec == "inline":
        backend_label = "inline"
    else:
        workers = scenario.workers if scenario.workers is not None else scenario.num_machines
        workers = min(int(workers), scenario.num_machines)
        backend_label = f"{resolved_exec} ({workers} workers)"
    print(f"scenario '{scenario.name}': {scenario.description}")
    print(f"dataset={scenario.dataset} scale={scenario.scale} "
          f"machines={scenario.num_machines} trainers/machine={scenario.trainers_per_machine} "
          f"partitioning={scenario.partition_method} execution={scenario.execution} "
          f"backend={backend_label}\n")

    cache_config = _build_cache_config(args)
    pipeline = args.pipeline
    if pipeline is None and cache_config is not None:
        pipeline = "tiered-cache"
    if _reject_cacheless_pipeline(pipeline, cache_config):
        return 2
    report = workload.run(
        pipeline=pipeline, prefetch_config=prefetch_config, cache_config=cache_config
    )
    summary = report.summary()

    rows = [
        [t.global_rank, t.machine, f"{t.compute_multiplier:.2f}", t.num_steps,
         f"{t.simulated_time_s:.4f}", f"{t.barrier_wait_s:.4f}",
         f"{t.hit_rate:.3f}" if t.hit_rate is not None else "-",
         int(t.rpc_stats.get("bytes_fetched", 0))]
        for t in report.trainer_stats
    ]
    print(format_table(
        ["rank", "machine", "slowdown", "steps", "sim time s", "barrier wait s",
         "hit rate", "rpc bytes"],
        rows,
    ))
    hit = (f", mean hit rate {summary['mean_hit_rate']:.3f}"
           if "mean_hit_rate" in summary else "")
    print(
        f"\n[{report.report.mode}] critical path {report.critical_path_time_s:.4f}s "
        f"(trainer {report.critical_trainer_rank}), "
        f"load imbalance {report.load_imbalance:.3f}, "
        f"total barrier wait {report.total_barrier_wait_s:.4f}s, "
        f"train acc {report.report.final_train_accuracy:.3f}{hit}"
    )
    tier_rates = report.mean_tier_hit_rates()
    if tier_rates:
        per_tier = ", ".join(f"{name} {rate:.3f}" for name, rate in sorted(tier_rates.items()))
        print(f"cache tiers: {per_tier}, total evictions {report.total_tier_evictions}")
    if report.engine is not None:
        failures = sum(t.sync_stats.get("failures", 0.0) for t in report.trainer_stats)
        downtime = sum(t.sync_stats.get("downtime_s", 0.0) for t in report.trainer_stats)
        staleness_wait = sum(
            t.sync_stats.get("staleness_wait_s", 0.0) for t in report.trainer_stats
        )
        hidden = sum(
            t.sync_stats.get("hidden_sync_time_s", 0.0) for t in report.trainer_stats
        )
        line = f"async sync: policy {report.sync}"
        if hidden:
            line += f", hidden sync time {hidden:.4f}s"
        if staleness_wait:
            line += f", staleness wait {staleness_wait:.4f}s"
        if failures:
            line += f", {int(failures)} failures ({downtime:.4f}s downtime)"
        print(line)
        joins = sum(t.sync_stats.get("joins", 0.0) for t in report.trainer_stats)
        leaves = sum(t.sync_stats.get("leaves", 0.0) for t in report.trainer_stats)
        rebalances = sum(
            t.sync_stats.get("rebalances", 0.0) for t in report.trainer_stats
        )
        restores = sum(t.sync_stats.get("restores", 0.0) for t in report.trainer_stats)
        if joins or leaves or rebalances or restores:
            migration_bytes = sum(
                t.sync_stats.get("migration_bytes", 0.0) for t in report.trainer_stats
            )
            migration_s = sum(
                t.sync_stats.get("migration_s", 0.0) for t in report.trainer_stats
            )
            print(
                f"elastic: {int(joins)} joins, {int(leaves)} leaves, "
                f"{int(rebalances)} rebalances, {int(restores)} restores, "
                f"{int(migration_bytes)} bytes migrated ({migration_s:.4f}s migration)"
            )

    if args.trace_dir is not None:
        import json

        args.trace_dir.mkdir(parents=True, exist_ok=True)
        path = args.trace_dir / f"cluster_{scenario.name}.json"
        with open(path, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
        print(f"\ncluster trace written to {path}")
    return 0


def _run_serving(
    scenario,
    seed: int,
    trace_dir: Optional[Path] = None,
    pipeline: Optional[str] = None,
    prefetch_config: Optional[PrefetchConfig] = None,
    cache_config: Optional[CacheConfig] = None,
) -> int:
    """Materialize and run a serving scenario; print the latency/SLO report.

    Shared by ``repro serve`` and the serving branch of ``repro run
    --cluster`` so both command shapes print the same tables.
    """
    try:
        workload = scenario.materialize(seed=seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"scenario '{scenario.name}': {scenario.description}")
    print(f"dataset={scenario.dataset} scale={scenario.scale} "
          f"machines={scenario.num_machines} trainers/machine={scenario.trainers_per_machine} "
          f"partitioning={scenario.partition_method} execution={scenario.execution}\n")
    report = workload.run(
        pipeline=pipeline, prefetch_config=prefetch_config, cache_config=cache_config
    )

    rows = [
        [w.global_rank, w.machine, w.requests, f"{w.busy_time_s:.4f}",
         f"{w.hit_rate:.3f}" if w.hit_rate is not None else "-",
         int(w.rpc_stats.get("bytes_fetched", 0))]
        for w in report.worker_stats
    ]
    print(format_table(
        ["rank", "machine", "requests", "busy s", "hit rate", "rpc bytes"], rows
    ))
    latency = report.latency_ms()
    print(
        f"\n[serving] {report.arrival}: {report.completed}/{report.num_requests} "
        f"requests, throughput {report.throughput_rps:.1f} rps "
        f"(offered {report.offered_rate_rps:g}), duration {report.duration_s:.4f}s, "
        f"warmup {report.warmup_time_s:.4f}s"
    )
    print(f"latency ms: p50 {latency['p50']:.3f}, p95 {latency['p95']:.3f}, "
          f"p99 {latency['p99']:.3f}, max {latency['max']:.3f} "
          f"(mean {latency['mean']:.3f})")
    print("p95 component ms: " + ", ".join(
        f"{name} {summary['p95']:.3f}"
        for name, summary in report.component_ms().items()
    ))
    print(f"SLO {report.slo_ms:g} ms: {report.slo_violations} violations "
          f"({report.slo_violation_rate:.1%}), "
          f"mean utilization {report.mean_utilization:.3f}")
    tier_rates = report.mean_tier_hit_rates()
    if tier_rates:
        per_tier = ", ".join(f"{name} {rate:.3f}" for name, rate in sorted(tier_rates.items()))
        print(f"cache tiers: {per_tier}")
    phase_split = report.phase_latency_ms()
    if phase_split:
        per_phase = ", ".join(f"{name} {summary['p99']:.3f}"
                              for name, summary in phase_split.items())
        print(f"phase p99 ms: {per_phase}")

    if trace_dir is not None:
        import json

        trace_dir.mkdir(parents=True, exist_ok=True)
        path = trace_dir / f"serving_{scenario.name}.json"
        with open(path, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
        print(f"\nserving trace written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve --scenario <name>``: online-inference serving run."""
    name = args.scenario or "steady-poisson"
    scenario = SCENARIOS.build(name)
    if ENGINES.resolve(scenario.engine) != "serving":
        serving_names = ", ".join(serving_scenarios())
        print(f"error: scenario {scenario.name!r} is a training workload — run it "
              f"with `repro run --cluster --scenario {scenario.name}`; serving "
              f"scenarios: {serving_names}", file=sys.stderr)
        return 2
    try:
        spec = scenario.serving.with_overrides(
            arrival=args.arrival, num_requests=args.requests,
            rate_rps=args.rate, slo_ms=args.slo_ms,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = scenario.with_overrides(
        scale=args.scale, num_machines=args.machines,
        trainers_per_machine=args.trainers_per_machine, serving=spec,
    )
    return _run_serving(scenario, seed=args.seed, trace_dir=args.trace_dir)


def _cmd_run(args: argparse.Namespace) -> int:
    # Engine/sync selection is a cluster-execution concern: an explicit
    # --engine (or any async sync knob) routes through the scenario-driven
    # cluster path, defaulting to the 'uniform' scenario.
    if (args.engine is not None or args.sync is not None
            or args.staleness is not None or args.sync_period is not None
            or args.execution_backend is not None or args.workers is not None):
        args.cluster = True
    if args.preset is not None:
        # A preset is a frozen (scenario, overrides) bundle: apply it first,
        # then let explicitly passed flags override — CLI beats preset beats
        # scenario recipe.
        try:
            preset = load_preset(args.preset, presets_dir=args.presets_dir)
            base = preset.apply()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.scenario is not None and SCENARIOS.resolve(args.scenario) != preset.scenario:
            print(f"error: --scenario {args.scenario!r} conflicts with preset "
                  f"{preset.name!r} (frozen for scenario {preset.scenario!r}); "
                  f"drop --scenario or pick a matching preset", file=sys.stderr)
            return 2
        overrides = ", ".join(f"{k}={v}" for k, v in preset.overrides) or "(none)"
        print(f"preset '{preset.name}': scenario {preset.scenario}, "
              f"objective {preset.objective}, overrides {overrides}\n")
        return _cmd_run_cluster(args, base_scenario=base)
    if args.cluster:
        return _cmd_run_cluster(args)
    if args.scenario is not None:
        print("error: --scenario requires --cluster "
              "(plain runs select data paths with --mode/--pipeline)", file=sys.stderr)
        return 2
    # Shared flags default to None (so --cluster can tell "explicitly passed"
    # from "defaulted"); the plain run path owns these documented defaults.
    backend = args.backend or "cpu"
    epochs = args.epochs if args.epochs is not None else 3
    dataset_name = args.dataset or "products"
    scale = args.scale if args.scale is not None else 0.25
    dataset = load_dataset(dataset_name, scale=scale, seed=args.seed)
    cluster = SimCluster(
        dataset,
        ClusterConfig(
            num_machines=args.machines if args.machines is not None else 2,
            trainers_per_machine=(
                args.trainers_per_machine if args.trainers_per_machine is not None else 2
            ),
            batch_size=args.batch_size if args.batch_size is not None else 128,
            fanouts=tuple(args.fanouts) if args.fanouts else (10, 25),
            backend=backend,
            seed=args.seed,
            sampler=args.sampler or "legacy",
            rpc=args.rpc or "per-call",
        ),
        cost_model=CostModel.preset(backend),
    )
    engine = TrainingEngine(
        cluster,
        TrainConfig(
            epochs=epochs, arch=args.arch, hidden_dim=args.hidden_dim,
            evaluate=args.evaluate, seed=args.seed,
        ),
    )
    prefetch_config = PrefetchConfig(
        halo_fraction=args.halo_fraction if args.halo_fraction is not None else 0.35,
        gamma=args.gamma if args.gamma is not None else 0.995,
        delta=args.delta if args.delta is not None else 16,
        eviction_enabled=not args.no_eviction,
        eviction_policy=args.eviction_policy or "score-threshold",
    )
    eviction_policy = (
        build_eviction_policy(args.eviction_policy, seed=args.seed)
        if args.eviction_policy
        else None
    )
    cache_config = _build_cache_config(args)
    pipeline = args.pipeline
    if pipeline is None and cache_config is not None:
        pipeline = "tiered-cache"
    if _reject_cacheless_pipeline(pipeline, cache_config):
        return 2

    if pipeline is not None:
        report = engine.run_pipeline(
            pipeline,
            prefetch_config=prefetch_config,
            eviction_policy=eviction_policy,
            cache_config=cache_config,
        )
        hit = f", hit rate {report.hit_rate:.3f}" if report.hit_tracker is not None else ""
        print(f"[{report.mode}] simulated time {report.total_simulated_time_s:.4f}s, "
              f"train acc {report.final_train_accuracy:.3f}{hit}")
        if args.trace_dir is not None:
            metadata = {"dataset": dataset_name, "scale": scale, "backend": backend}
            save_trace(report, args.trace_dir / f"{report.mode}.json", metadata)
            print(f"\ntraces written to {args.trace_dir}")
        return 0

    baseline = prefetch = None
    if args.mode in ("baseline", "both"):
        baseline = engine.run_baseline()
        print(f"[baseline] simulated time {baseline.total_simulated_time_s:.4f}s, "
              f"train acc {baseline.final_train_accuracy:.3f}")
    if args.mode in ("prefetch", "both"):
        prefetch = engine.run_prefetch(prefetch_config, eviction_policy=eviction_policy)
        print(f"[prefetch] simulated time {prefetch.total_simulated_time_s:.4f}s, "
              f"train acc {prefetch.final_train_accuracy:.3f}, hit rate {prefetch.hit_rate:.3f}")
    if baseline is not None and prefetch is not None:
        print("\n" + viz.comparison_summary(baseline, prefetch))
        print("\nPrefetch-pipeline component shares:")
        print(viz.stacked_breakdown({
            k: v for k, v in prefetch.component_breakdown.items()
            if k in ("sampling", "lookup", "scoring", "eviction", "rpc", "copy", "ddp", "allreduce")
        }))

    if args.trace_dir is not None:
        metadata = {"dataset": dataset_name, "scale": scale, "backend": backend}
        if baseline is not None:
            save_trace(baseline, args.trace_dir / "baseline.json", metadata)
        if prefetch is not None:
            save_trace(prefetch, args.trace_dir / "prefetch.json", metadata)
        print(f"\ntraces written to {args.trace_dir}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: replay a scenario, then narrate one node's decisions.

    The replay runs the tiered-cache pipeline with the requested scored
    policies inside a :func:`~repro.cache.scoring.capture_decisions` session;
    recording is pure observation, so the replayed decisions are exactly what
    a non-captured run of the same scenario/seed would make.
    """
    scenario = SCENARIOS.build(args.scenario).with_overrides(
        scale=args.scale, epochs=args.epochs
    )
    try:
        cache_config = CacheConfig(
            tiers=args.cache_tiers,
            admission=args.admission,
            eviction=args.eviction,
            record_decisions=True,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    with capture_decisions() as log:
        if ENGINES.resolve(scenario.engine) == "serving":
            workload = scenario.materialize(seed=args.seed)
        else:
            workload = scenario.materialize(
                seed=args.seed,
                train_config=TrainConfig(epochs=scenario.epochs, seed=args.seed),
            )
        workload.run(pipeline="tiered-cache", cache_config=cache_config)

    counts = log.decision_counts()
    if not counts:
        print("error: the replay recorded no scored decisions (did every tier "
              "stay under capacity?)", file=sys.stderr)
        return 1
    node_id = args.node_id
    if node_id is None:
        # Deterministic default: most decisions, ties to the smallest id.
        node_id = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
    records = log.records_for(node_id)
    if not records:
        busiest = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        hint = ", ".join(f"{nid} ({n})" for nid, n in busiest)
        print(f"error: node {node_id} has no recorded decisions in this replay; "
              f"most-decided nodes: {hint}", file=sys.stderr)
        return 1

    if args.json:
        import json

        for tier_index, record in records:
            print(json.dumps({"tier_index": tier_index, **record.as_dict()}))
        return 0

    print(f"scenario '{scenario.name}' seed={args.seed}: "
          f"cache = {cache_config.describe()}")
    print(f"node {node_id}: {len(records)} decision(s) across "
          f"{len(log.tiers)} scored tier(s)\n")
    shown = records if args.limit <= 0 else records[-args.limit:]
    if len(shown) < len(records):
        print(f"(showing the last {len(shown)} of {len(records)} decisions; "
              f"--limit 0 for all)")

    def fmt(value: float) -> str:
        return "-" if value != value else f"{value:.4f}"  # nan-safe

    rows = [
        [r.step, f"{tier_index}:{r.tier}", r.action, fmt(r.score),
         fmt(r.lower_bound), fmt(r.upper_bound), fmt(r.threshold),
         r.mode, r.reason]
        for tier_index, r in shown
    ]
    print(format_table(
        ["step", "tier", "action", "score", "lower", "upper", "threshold",
         "mode", "reason"],
        rows,
    ))

    import numpy as np

    resident_in = [
        f"{i}:{tier.name}" for i, tier in enumerate(log.tiers)
        if bool(np.isin(np.int64(node_id), tier.resident_ids))
    ]
    if resident_in:
        print(f"\nfinal state: resident in {', '.join(resident_in)}")
    else:
        print("\nfinal state: not resident in any scored tier")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    sweep = run_parameter_sweep(
        dataset,
        cluster_config=ClusterConfig(
            num_machines=args.machines, trainers_per_machine=2,
            batch_size=args.batch_size, fanouts=(5, 10),
            backend=args.backend, seed=args.seed,
        ),
        train_config=TrainConfig(epochs=args.epochs, hidden_dim=32, seed=args.seed),
        halo_fractions=tuple(args.halo_fractions),
        gammas=tuple(args.gammas),
        deltas=tuple(args.deltas),
    )
    rows = [
        [p.halo_fraction, p.gamma, p.delta, round(p.total_time_s, 4),
         round(p.hit_rate, 3), round(p.improvement_percent, 1)]
        for p in sweep.points
    ]
    print(format_table(["f_h", "gamma", "delta", "time s", "hit rate", "improvement %"], rows))
    best = find_optimal(sweep)
    print(
        f"\noptimal: f_h={best['halo_fraction']}, gamma={best['gamma']}, delta={int(best['delta'])} "
        f"-> {best['improvement_percent']:.1f}% improvement, hit rate {best['hit_rate']:.3f}"
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """``repro tune``: sweep a scenario's knobs and rank configurations.

    The sweep is deterministic end to end — candidate order is fixed by
    (strategy, seed), every evaluation runs at the shared seed, and ranking
    ties break on the candidate's canonical JSON — so ``--json`` output and
    ``--emit-preset`` files are byte-identical across same-seed re-runs.
    """
    space = None
    if args.axis:
        axes = {}
        try:
            for item in args.axis:
                name, sep, values = item.partition("=")
                if not sep:
                    raise ValueError(
                        f"--axis expects NAME=V1[,V2...], got {item!r}"
                    )
                canonical, parsed = parse_axis_values(name.strip(), values)
                if canonical in axes:
                    raise ValueError(f"axis {canonical!r} given more than once")
                axes[canonical] = parsed
            space = SearchSpace(axes)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        runner = TuneRunner(
            scenario=args.scenario, objective=args.objective, space=space,
            strategy=args.strategy, budget=args.budget, seed=args.seed,
            scale=args.scale, epochs=args.epochs, parallelism=args.parallel,
        )
        report = runner.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.canonical_json(), end="")
    else:
        print(report.summary())
    if args.emit_preset:
        try:
            preset = Preset.from_tune(report, args.emit_preset)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        path = preset.save(args.presets_dir)
        print(f"\npreset written to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "scenarios":
        return _cmd_scenarios(markdown=args.markdown)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "explain":
        return _cmd_explain(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
