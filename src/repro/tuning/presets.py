"""Presets: frozen, provenance-carrying winners of a tune sweep.

A :class:`Preset` is the committed artifact of ``repro tune --emit-preset``:
the scenario name, the winning axis overrides, and the sweep provenance
(objective, scores, seed, strategy, budget, spec hash) needed to re-derive
it.  Files live under ``presets/<name>.json`` in canonical JSON, so a
re-emitted preset from the same sweep is byte-identical to the committed one.

Loading validates with the same eagerness as the rest of the config layer:
unknown top-level fields are rejected with the valid-field list (the
``with_overrides`` contract), scenario/objective/strategy names resolve
through their registries, and every override is checked by its
:class:`~repro.tuning.space.AxisSpec` — a hand-edited preset fails at load,
not mid-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.tuning.space import validate_overrides

_GENERATED_BY = "repro tune"


def default_presets_dir() -> Path:
    """The repository's committed ``presets/`` directory."""
    return Path(__file__).resolve().parents[3] / "presets"


@dataclass(frozen=True)
class Preset:
    """A named, frozen axis-override bundle with full sweep provenance.

    ``overrides`` is stored as a name-sorted tuple of ``(axis, value)`` pairs
    — hashable (so the preset pickles and compares by value) and canonical
    (so the JSON form is order-stable).  Construction validates the scenario,
    objective, and strategy names against their registries and each override
    against its axis spec.
    """

    name: str
    scenario: str
    overrides: Tuple[Tuple[str, object], ...]
    objective: str
    score: Optional[float] = None
    baseline_score: Optional[float] = None
    improvement_percent: Optional[float] = None
    seed: int = 0
    strategy: str = "grid"
    budget: Optional[int] = None
    spec_hash: str = ""
    description: str = ""
    created_by: str = _GENERATED_BY

    def __post_init__(self):
        from repro.scenarios.registry import SCENARIOS
        from repro.tuning.objectives import OBJECTIVES
        from repro.tuning.space import SEARCH_STRATEGIES

        object.__setattr__(self, "scenario", SCENARIOS.resolve(self.scenario))
        object.__setattr__(self, "objective", OBJECTIVES.resolve(self.objective))
        object.__setattr__(self, "strategy",
                           SEARCH_STRATEGIES.resolve(self.strategy))
        canonical = validate_overrides(dict(self.overrides))
        object.__setattr__(
            self, "overrides",
            tuple((name, canonical[name]) for name in sorted(canonical)),
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Preset":
        """Build from a JSON payload, rejecting unknown fields by name."""
        valid = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(payload) - valid)
        if unknown:
            raise ValueError(
                f"unknown preset fields {unknown}; valid fields: {sorted(valid)}"
            )
        payload = dict(payload)
        overrides = payload.get("overrides", {})
        if isinstance(overrides, dict):
            payload["overrides"] = tuple(sorted(overrides.items()))
        else:
            payload["overrides"] = tuple((k, v) for k, v in overrides)
        return cls(**payload)

    @classmethod
    def from_tune(cls, report, name: str, description: str = "") -> "Preset":
        """Freeze the winner of a :class:`~repro.tuning.runner.TuneReport`."""
        best = report.best
        if best is None:
            raise ValueError(
                f"tune report for {report.scenario!r} has no valid candidate "
                f"to freeze as a preset"
            )
        return cls(
            name=name,
            scenario=report.scenario,
            overrides=tuple(sorted(best.overrides)),
            objective=report.objective,
            score=best.score,
            baseline_score=report.baseline_score,
            improvement_percent=best.improvement_percent,
            seed=report.seed,
            strategy=report.strategy,
            budget=report.budget,
            spec_hash=report.spec_hash,
            description=description,
        )

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form (overrides as a plain mapping)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "overrides": dict(self.overrides),
            "objective": self.objective,
            "score": self.score,
            "baseline_score": self.baseline_score,
            "improvement_percent": self.improvement_percent,
            "seed": self.seed,
            "strategy": self.strategy,
            "budget": self.budget,
            "spec_hash": self.spec_hash,
            "description": self.description,
            "created_by": self.created_by,
        }

    def to_json(self) -> str:
        """Byte-stable file contents — what ``--emit-preset`` writes."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, presets_dir: Optional[Union[str, Path]] = None) -> Path:
        """Write ``<presets_dir>/<name>.json`` and return the path."""
        directory = Path(presets_dir) if presets_dir else default_presets_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(self.to_json())
        return path

    def apply(self):
        """The preset's scenario with its overrides applied."""
        from repro.scenarios.registry import SCENARIOS
        from repro.tuning.space import apply_axis_overrides

        return apply_axis_overrides(SCENARIOS.build(self.scenario),
                                    dict(self.overrides))


def available_presets(presets_dir: Optional[Union[str, Path]] = None) -> List[str]:
    """Sorted names of the preset files under *presets_dir*."""
    directory = Path(presets_dir) if presets_dir else default_presets_dir()
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.json"))


def load_preset(name_or_path: Union[str, Path],
                presets_dir: Optional[Union[str, Path]] = None) -> Preset:
    """Load a preset by committed name or explicit ``.json`` path.

    Unknown names raise ``ValueError`` listing the available presets — the
    registry error contract, applied to files.
    """
    candidate = Path(name_or_path)
    if candidate.suffix == ".json" or candidate.is_file():
        path = candidate
    else:
        directory = Path(presets_dir) if presets_dir else default_presets_dir()
        path = directory / f"{name_or_path}.json"
        if not path.is_file():
            valid = ", ".join(available_presets(directory)) or "(none)"
            raise ValueError(
                f"unknown preset {name_or_path!r}; available presets: {valid}"
            )
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ValueError(f"cannot read preset file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"preset file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"preset file {path} must contain a JSON object")
    return Preset.from_dict(payload)
