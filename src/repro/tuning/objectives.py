"""Objectives: scalar scores extracted from run reports, with a direction.

Each objective reads one field off the report a candidate run already
produces — :class:`~repro.training.cluster_engine.ClusterReport` for training
engines, :class:`~repro.serving.report.ServingReport` for the serving engine —
so tuning adds no new instrumentation.  An objective that cannot read its
surface from the report it is given (e.g. ``serving-p99-ms`` on a training
run, or ``cache-hit-rate`` on a run with no cache in the data path) raises
``ValueError`` rather than returning a fake score; the runner records the
candidate as invalid instead of ranking it.
"""

from __future__ import annotations

from repro.utils.registry import Registry

OBJECTIVES = Registry("objective")


class Objective:
    """Base objective: a named, directed scalar read off a run report.

    ``direction`` is ``"min"`` (lower is better: times, latencies, violation
    rates) or ``"max"`` (higher is better: hit rates).  Subclasses implement
    :meth:`score`; ranking and improvement math live here so every objective
    orders candidates the same way.
    """

    name: str = ""
    direction: str = "min"
    units: str = ""
    description: str = ""

    def score(self, report) -> float:
        """The scalar value of this objective for *report*."""
        raise NotImplementedError

    def better(self, a: float, b: float) -> bool:
        """True when score *a* beats score *b* under this direction."""
        return a < b if self.direction == "min" else a > b

    def sort_key(self, value: float) -> float:
        """A key under which ascending order is best-first."""
        return value if self.direction == "min" else -value

    def improvement_percent(self, score: float, baseline: float) -> float:
        """Signed improvement of *score* over *baseline*, in percent.

        Positive means *score* is better; a zero baseline yields 0.0 (no
        meaningful relative gain).
        """
        if baseline == 0:
            return 0.0
        if self.direction == "min":
            return 100.0 * (baseline - score) / abs(baseline)
        return 100.0 * (score - baseline) / abs(baseline)


def _require(report, attr: str, objective: str):
    if not hasattr(report, attr):
        raise ValueError(
            f"objective {objective!r} needs a report with {attr!r}; "
            f"got {type(report).__name__}"
        )
    return getattr(report, attr)


@OBJECTIVES.register("critical-path-s", aliases=("critical-path", "makespan"))
class CriticalPathObjective(Objective):
    """Minimize the cluster critical-path time (seconds of simulated epoch)."""

    name = "critical-path-s"
    direction = "min"
    units = "s"
    description = "cluster critical-path time over the run (lower is better)"

    def score(self, report) -> float:
        """``ClusterReport.critical_path_time_s``."""
        return float(_require(report, "critical_path_time_s", self.name))


@OBJECTIVES.register("cache-hit-rate", aliases=("hit-rate",))
class CacheHitRateObjective(Objective):
    """Maximize the mean cache hit rate across trainers (or requests)."""

    name = "cache-hit-rate"
    direction = "max"
    units = "fraction"
    description = "mean cache hit rate (higher is better)"

    def score(self, report) -> float:
        """``mean_hit_rate`` — both report kinds expose it; None is invalid."""
        rate = _require(report, "mean_hit_rate", self.name)
        if rate is None:
            raise ValueError(
                f"objective {self.name!r}: run produced no cache statistics "
                f"(no cache in the data path)"
            )
        return float(rate)


@OBJECTIVES.register("serving-p99-ms", aliases=("p99", "p99-ms"))
class ServingP99Objective(Objective):
    """Minimize the p99 request latency of a serving run."""

    name = "serving-p99-ms"
    direction = "min"
    units = "ms"
    description = "serving p99 request latency (lower is better)"

    def score(self, report) -> float:
        """``ServingReport.latency_ms()['p99']``."""
        latency = _require(report, "latency_ms", self.name)
        return float(latency()["p99"])


@OBJECTIVES.register("slo-violation-rate", aliases=("slo",))
class SloViolationObjective(Objective):
    """Minimize the fraction of serving requests that miss their SLO."""

    name = "slo-violation-rate"
    direction = "min"
    units = "fraction"
    description = "fraction of requests over the latency SLO (lower is better)"

    def score(self, report) -> float:
        """``ServingReport.slo_violation_rate``."""
        return float(_require(report, "slo_violation_rate", self.name))


def default_objective(scenario) -> str:
    """The natural objective for a scenario: p99 for serving, critical path else."""
    from repro.training.engines import ENGINES

    if ENGINES.resolve(scenario.engine) == "serving":
        return "serving-p99-ms"
    return "critical-path-s"
