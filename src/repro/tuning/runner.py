"""The tune loop: evaluate candidates, rank them, freeze the report.

:class:`TuneRunner` drives one sweep: a strategy orders the candidates of a
:class:`~repro.tuning.space.SearchSpace`, each candidate is applied to the
base scenario with
:func:`~repro.tuning.space.apply_axis_overrides`, materialized and run at the
shared seed, and scored by the objective.  The baseline (the unmodified
scenario at the same seed) is run first so every candidate carries a signed
improvement.  Candidates whose configuration is rejected by the config layer
or whose report lacks the objective's surface are recorded as ``invalid``
with the error text, not silently dropped.

Determinism: simulated runs are seed-deterministic, candidate order is fixed
by (strategy, seed), and ranking ties break on the canonical JSON of the
override dict — so the same (scenario, space, objective, strategy, budget,
seed) always yields a byte-identical :meth:`TuneReport.canonical_json`.
``parallelism > 1`` fans candidates out over a process pool;
``executor.map`` preserves candidate order, so parallel and serial runs
produce identical reports.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.scenarios.registry import SCENARIOS, ClusterScenario
from repro.tuning.objectives import OBJECTIVES, Objective
from repro.tuning.space import (
    SEARCH_STRATEGIES,
    SearchSpace,
    apply_axis_overrides,
    default_search_space,
)

_GENERATED_BY = "repro.tuning"


def _canonical(obj) -> str:
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def _overrides_key(overrides: Mapping[str, object]) -> str:
    return json.dumps(dict(overrides), sort_keys=True)


def _evaluate(payload: Tuple[ClusterScenario, Dict[str, object], str, int]):
    """Run one candidate and score it (module-level so process pools pickle it).

    Returns ``(score, None)`` on success or ``(None, error_text)`` when the
    candidate is rejected by config validation or the objective cannot read
    its surface from the produced report.
    """
    scenario, overrides, objective_name, seed = payload
    objective: Objective = OBJECTIVES.build(objective_name)
    try:
        candidate = apply_axis_overrides(scenario, overrides)
        report = candidate.materialize(seed=seed).run()
        return float(objective.score(report)), None
    except ValueError as exc:
        return None, str(exc)


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated candidate: its overrides, score, and rank.

    ``overrides`` is a tuple of ``(axis, value)`` pairs in the space's axis
    order (hashable, so the result pickles and compares by value).  ``rank``
    is 1-based over the ``ok`` candidates; invalid candidates carry
    ``rank=0``, ``score=None`` and the error text.
    """

    rank: int
    overrides: Tuple[Tuple[str, object], ...]
    score: Optional[float]
    improvement_percent: Optional[float]
    status: str = "ok"           # "ok" | "invalid"
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form of this candidate row."""
        return {
            "rank": self.rank,
            "overrides": dict(self.overrides),
            "score": self.score,
            "improvement_percent": self.improvement_percent,
            "status": self.status,
            "error": self.error,
        }


@dataclass(frozen=True)
class TuneReport:
    """The frozen outcome of one sweep: provenance, baseline, ranked table.

    ``evaluated`` preserves strategy order (it is how tests distinguish the
    seed-independent grid walk from a seed-keyed random permutation);
    ``candidates`` is ranked best-first.  ``spec_hash`` digests the canonical
    sweep spec so a preset can point back at the exact sweep that produced
    it.  :meth:`canonical_json` is the byte-stable serialization the
    differential tests compare.
    """

    scenario: str
    objective: str
    direction: str
    strategy: str
    budget: Optional[int]
    seed: int
    scale: Optional[float]
    epochs: Optional[int]
    space: Tuple[Tuple[str, Tuple[object, ...]], ...]
    baseline_score: Optional[float]
    evaluated: Tuple[Tuple[Tuple[str, object], ...], ...]
    candidates: Tuple[CandidateResult, ...]
    spec_hash: str
    generated_by: str = _GENERATED_BY

    @property
    def best(self) -> Optional[CandidateResult]:
        """The top-ranked valid candidate, or None when every candidate failed."""
        for candidate in self.candidates:
            if candidate.status == "ok":
                return candidate
        return None

    @property
    def best_overrides(self) -> Dict[str, object]:
        """Override dict of the winning candidate (empty when none succeeded)."""
        best = self.best
        return dict(best.overrides) if best is not None else {}

    @property
    def best_score(self) -> Optional[float]:
        """Objective score of the winning candidate."""
        best = self.best
        return best.score if best is not None else None

    @property
    def best_improvement_percent(self) -> Optional[float]:
        """Signed gain of the winner over the scenario default, in percent."""
        best = self.best
        return best.improvement_percent if best is not None else None

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form (ranked table plus full sweep provenance)."""
        return {
            "scenario": self.scenario,
            "objective": self.objective,
            "direction": self.direction,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "scale": self.scale,
            "epochs": self.epochs,
            "space": [[name, list(values)] for name, values in self.space],
            "baseline_score": self.baseline_score,
            "evaluated": [dict(overrides) for overrides in self.evaluated],
            "candidates": [c.as_dict() for c in self.candidates],
            "spec_hash": self.spec_hash,
            "generated_by": self.generated_by,
        }

    def canonical_json(self) -> str:
        """Byte-stable serialization — what the differential tests compare."""
        return _canonical(self.as_dict())

    def summary(self) -> str:
        """Human-readable ranked table for the CLI."""
        objective = OBJECTIVES.build(self.objective)
        lines = [
            f"tune {self.scenario} · objective {self.objective} "
            f"({self.direction}) · strategy {self.strategy} · seed {self.seed}",
            f"  baseline: {self.baseline_score}",
        ]
        for candidate in self.candidates:
            label = ", ".join(f"{k}={v}" for k, v in candidate.overrides)
            if candidate.status != "ok":
                lines.append(f"  --  {label}  [invalid: {candidate.error}]")
                continue
            gain = (f"{candidate.improvement_percent:+.2f}%"
                    if candidate.improvement_percent is not None else "n/a")
            lines.append(
                f"  #{candidate.rank}  {label}  "
                f"score={candidate.score:.6g} {objective.units}  ({gain})"
            )
        return "\n".join(lines)


def _spec_hash(spec: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical(spec).encode()).hexdigest()[:12]


@dataclass
class TuneRunner:
    """Configure and run one sweep over a scenario's knob surface.

    ``scenario`` is a registered name or a :class:`ClusterScenario`;
    ``scale``/``epochs`` shrink the evaluation workload (applied to the
    baseline and every candidate alike, so improvements compare like with
    like).  ``parallelism > 1`` evaluates candidates across a process pool;
    results are order-preserving and bit-identical to the serial run.
    """

    scenario: Union[str, ClusterScenario]
    objective: Optional[str] = None
    space: Optional[SearchSpace] = None
    strategy: str = "grid"
    budget: Optional[int] = None
    seed: int = 0
    scale: Optional[float] = None
    epochs: Optional[int] = None
    parallelism: int = 1
    _base: ClusterScenario = field(init=False, repr=False)
    _objective: Objective = field(init=False, repr=False)

    def __post_init__(self):
        base = (self.scenario if isinstance(self.scenario, ClusterScenario)
                else SCENARIOS.build(self.scenario))
        base = base.with_overrides(scale=self.scale, epochs=self.epochs)
        if self.objective is None:
            from repro.tuning.objectives import default_objective

            self.objective = default_objective(base)
        self.objective = OBJECTIVES.resolve(self.objective)
        self.strategy = SEARCH_STRATEGIES.resolve(self.strategy)
        if self.space is None:
            self.space = default_search_space(base)
        if self.budget is not None and int(self.budget) < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "_objective", OBJECTIVES.build(self.objective))

    # ------------------------------------------------------------------ #
    def _baseline_score(self) -> Optional[float]:
        try:
            report = self._base.materialize(seed=self.seed).run()
            return float(self._objective.score(report))
        except ValueError:
            return None

    def run(self) -> TuneReport:
        """Evaluate every candidate and return the ranked, frozen report."""
        strategy = SEARCH_STRATEGIES.build(self.strategy)
        candidates = strategy.candidates(self.space, budget=self.budget,
                                         seed=self.seed)
        baseline = self._baseline_score()
        payloads = [(self._base, overrides, self.objective, self.seed)
                    for overrides in candidates]
        if self.parallelism > 1 and len(payloads) > 1:
            with ProcessPoolExecutor(max_workers=self.parallelism) as pool:
                outcomes = list(pool.map(_evaluate, payloads))
        else:
            outcomes = [_evaluate(p) for p in payloads]

        axis_order = {name: i for i, name in enumerate(self.space.names())}
        rows: List[Tuple[Dict[str, object], Optional[float], Optional[str]]] = [
            (overrides, score, error)
            for overrides, (score, error) in zip(candidates, outcomes)
        ]
        ok = [r for r in rows if r[1] is not None]
        invalid = [r for r in rows if r[1] is None]
        ok.sort(key=lambda r: (self._objective.sort_key(r[1]),
                               _overrides_key(r[0])))

        def freeze(overrides: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
            ordered = sorted(overrides, key=lambda n: axis_order[n])
            return tuple((name, overrides[name]) for name in ordered)

        ranked: List[CandidateResult] = []
        for rank, (overrides, score, _) in enumerate(ok, start=1):
            gain = (self._objective.improvement_percent(score, baseline)
                    if baseline is not None else None)
            ranked.append(CandidateResult(
                rank=rank, overrides=freeze(overrides), score=score,
                improvement_percent=gain,
            ))
        for overrides, _, error in invalid:
            ranked.append(CandidateResult(
                rank=0, overrides=freeze(overrides), score=None,
                improvement_percent=None, status="invalid", error=error,
            ))

        spec = {
            "scenario": self._base.name,
            "objective": self.objective,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "scale": self.scale,
            "epochs": self.epochs,
            "space": [[name, list(values)] for name, values in self.space.axes],
        }
        return TuneReport(
            scenario=self._base.name,
            objective=self.objective,
            direction=self._objective.direction,
            strategy=self.strategy,
            budget=self.budget,
            seed=self.seed,
            scale=self.scale,
            epochs=self.epochs,
            space=self.space.axes,
            baseline_score=baseline,
            evaluated=tuple(freeze(o) for o in candidates),
            candidates=tuple(ranked),
            spec_hash=_spec_hash(spec),
        )
