"""Sweep-driven auto-configuration: search spaces, objectives, presets.

The knob surface of a :class:`~repro.scenarios.registry.ClusterScenario` —
sampler, RPC channel, cache tiers and their admission/eviction/scorer
policies, execution engine, sync policy and its staleness/period knobs,
execution backend, serving arrival parameters — is searched by a
:class:`~repro.tuning.runner.TuneRunner`: a
:class:`~repro.tuning.space.SearchSpace` names the axes (validated eagerly
against the same registries the rest of the package selects from), a
:data:`~repro.tuning.space.SEARCH_STRATEGIES` entry orders the candidates
(exhaustive ``grid`` or seeded ``random``), and an
:data:`~repro.tuning.objectives.OBJECTIVES` entry scores each run's report
(critical path, cache hit rate, serving p99, SLO-violation rate).

The winning configuration is frozen as a :class:`~repro.tuning.presets.Preset`
(``presets/*.json`` with full provenance: seed, budget, spec hash, scores), so
``repro run --preset <name>`` pins a known-good bundle::

    repro tune --scenario straggler-machine --objective critical-path-s \
        --emit-preset throughput-straggler
    repro run --preset throughput-straggler

Determinism follows the repository's differential-test discipline: the same
(seed, budget, space) produces a byte-identical ranked report and preset file.
"""

from repro.tuning.objectives import OBJECTIVES, default_objective
from repro.tuning.presets import (
    Preset,
    available_presets,
    default_presets_dir,
    load_preset,
)
from repro.tuning.runner import TuneReport, TuneRunner
from repro.tuning.space import (
    AXES,
    SEARCH_STRATEGIES,
    SearchSpace,
    apply_axis_overrides,
    default_search_space,
)

__all__ = [
    "AXES",
    "OBJECTIVES",
    "Preset",
    "SEARCH_STRATEGIES",
    "SearchSpace",
    "TuneReport",
    "TuneRunner",
    "apply_axis_overrides",
    "available_presets",
    "default_objective",
    "default_presets_dir",
    "default_search_space",
    "load_preset",
]
