"""Named tuning axes, the :class:`SearchSpace`, and candidate strategies.

Every axis addresses one scenario knob — either a top-level
:class:`~repro.scenarios.registry.ClusterScenario` field (``sampler``,
``engine``, ``staleness``, ...) or a dotted sub-config field
(``cache.eviction``, ``prefetch.halo_fraction``, ``serving.rate_rps``).
Axis names and values are validated *eagerly* at space construction: a
registry-valued axis resolves every value through the owning registry
(:data:`~repro.sampling.neighbor_sampler.SAMPLERS`,
:data:`~repro.distributed.rpc.RPC_CHANNELS`,
:data:`~repro.cache.policies.ADMISSION_POLICIES`, ...), so a typo fails
before any candidate runs — the same error contract those registries give
the CLI.

:data:`SEARCH_STRATEGIES` orders the candidates: ``grid`` walks the exact
cartesian product in axis order (seed-independent), ``random`` is a seeded
permutation of that grid — with a budget at least the space size it still
covers every grid point, just in a seed-dependent order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.policies import ADMISSION_POLICIES, CACHE_EVICTION_POLICIES
from repro.cache.scoring import SCORERS
from repro.core.config import PrefetchConfig
from repro.core.eviction import EVICTION_POLICIES
from repro.distributed.rpc import RPC_CHANNELS
from repro.events.sync import SYNC_POLICIES
from repro.sampling.neighbor_sampler import SAMPLERS
from repro.serving.arrivals import ARRIVALS
from repro.training.backends import EXECUTION_BACKENDS
from repro.training.engines import ENGINES
from repro.utils.registry import Registry
from repro.utils.rng import derive_seed

#: RNG salt for the random search strategy (disjoint from engine/worker salts).
_STRATEGY_SALT = 911


# --------------------------------------------------------------------------- #
# Axes
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AxisSpec:
    """One tunable knob: where it lands and how its values are validated.

    ``target`` selects the config the value is applied to (``scenario`` for a
    top-level :class:`ClusterScenario` field, or one of the nested configs:
    ``cache``/``prefetch``/``serving``); ``field`` is the dataclass field name
    there.  ``kind`` drives value validation: ``registry`` values resolve
    through ``registry`` (canonicalizing aliases), numeric kinds type-check.
    """

    name: str
    kind: str                       # "registry" | "int" | "float" | "bool"
    target: str                     # "scenario" | "cache" | "prefetch" | "serving"
    field: str
    registry: Optional[Registry] = None

    def validate_value(self, value):
        """Canonicalized *value*, or ``ValueError`` naming the axis and choices."""
        if self.kind == "registry":
            if not isinstance(value, str):
                raise ValueError(
                    f"axis {self.name!r} takes {self.registry.kind} names, "
                    f"got {value!r}"
                )
            return self.registry.resolve(value)
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ValueError(f"axis {self.name!r} takes booleans, got {value!r}")
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"axis {self.name!r} takes integers, got {value!r}")
            return int(value)
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"axis {self.name!r} takes numbers, got {value!r}")
            return float(value)
        raise AssertionError(f"unhandled axis kind {self.kind!r}")  # pragma: no cover

    def parse(self, text: str):
        """Parse a CLI-provided string into this axis's value type."""
        if self.kind == "registry":
            return self.validate_value(text)
        if self.kind == "bool":
            lowered = text.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(f"axis {self.name!r} takes true/false, got {text!r}")
        try:
            return self.validate_value(
                int(text) if self.kind == "int" else float(text)
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"axis {self.name!r} takes {self.kind} values, got {text!r}"
            ) from exc


def _axes() -> Dict[str, AxisSpec]:
    scenario = [
        AxisSpec("sampler", "registry", "scenario", "sampler", SAMPLERS),
        AxisSpec("rpc", "registry", "scenario", "rpc", RPC_CHANNELS),
        AxisSpec("engine", "registry", "scenario", "engine", ENGINES),
        AxisSpec("sync", "registry", "scenario", "sync", SYNC_POLICIES),
        AxisSpec("staleness", "int", "scenario", "staleness"),
        AxisSpec("sync_period", "int", "scenario", "sync_period"),
        AxisSpec("execution_backend", "registry", "scenario", "execution_backend",
                 EXECUTION_BACKENDS),
        AxisSpec("workers", "int", "scenario", "workers"),
        AxisSpec("batch_size", "int", "scenario", "batch_size"),
        AxisSpec("epochs", "int", "scenario", "epochs"),
        AxisSpec("num_machines", "int", "scenario", "num_machines"),
        AxisSpec("trainers_per_machine", "int", "scenario", "trainers_per_machine"),
        AxisSpec("pipeline", "str", "scenario", "pipeline"),
    ]
    cache = [
        AxisSpec("cache.tiers", "int", "cache", "tiers"),
        AxisSpec("cache.admission", "registry", "cache", "admission",
                 ADMISSION_POLICIES),
        AxisSpec("cache.eviction", "registry", "cache", "eviction",
                 CACHE_EVICTION_POLICIES),
        AxisSpec("cache.shared_admission", "registry", "cache", "shared_admission",
                 ADMISSION_POLICIES),
        AxisSpec("cache.shared_eviction", "registry", "cache", "shared_eviction",
                 CACHE_EVICTION_POLICIES),
        AxisSpec("cache.scorer", "registry", "cache", "scorer", SCORERS),
        AxisSpec("cache.adaptive", "bool", "cache", "adaptive"),
        AxisSpec("cache.hot_fraction", "float", "cache", "hot_fraction"),
    ]
    prefetch = [
        AxisSpec("prefetch.halo_fraction", "float", "prefetch", "halo_fraction"),
        AxisSpec("prefetch.gamma", "float", "prefetch", "gamma"),
        AxisSpec("prefetch.delta", "int", "prefetch", "delta"),
        AxisSpec("prefetch.eviction_policy", "registry", "prefetch",
                 "eviction_policy", EVICTION_POLICIES),
    ]
    serving = [
        AxisSpec("serving.arrival", "registry", "serving", "arrival", ARRIVALS),
        AxisSpec("serving.rate_rps", "float", "serving", "rate_rps"),
        AxisSpec("serving.num_requests", "int", "serving", "num_requests"),
        AxisSpec("serving.slo_ms", "float", "serving", "slo_ms"),
        AxisSpec("serving.zipf_alpha", "float", "serving", "zipf_alpha"),
    ]
    return {spec.name: spec for spec in scenario + cache + prefetch + serving}


#: Every tunable axis, by name.  The fixed enumeration (rather than arbitrary
#: scenario fields) is what makes eager validation possible: each axis knows
#: its owning registry or numeric type, so bad names *and* bad values fail at
#: space construction, before any candidate run.
AXES: Dict[str, AxisSpec] = _axes()

# "pipeline" is registry-valued but PIPELINES lives above this module's
# import layer only at runtime; resolve it lazily to the same error contract.
def _validate_pipeline(value):
    from repro.training.pipelines import PIPELINES

    if not isinstance(value, str):
        raise ValueError(f"axis 'pipeline' takes pipeline names, got {value!r}")
    return PIPELINES.resolve(value)


def _resolve_axis(name: str) -> AxisSpec:
    if not isinstance(name, str) or name not in AXES:
        valid = ", ".join(sorted(AXES))
        raise ValueError(f"unknown tuning axis {name!r}; valid axes: {valid}")
    return AXES[name]


def parse_axis_values(name: str, text: str) -> Tuple[str, Tuple[object, ...]]:
    """Parse a CLI ``--axis name=v1,v2`` value list with axis-aware typing.

    Returns ``(canonical_axis_name, values)``; unknown axes and unparsable
    values raise ``ValueError`` with the same diagnostics as space
    construction.
    """
    spec = _resolve_axis(name)
    values: List[object] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if spec.kind == "str":
            values.append(_validate_pipeline(token))
        else:
            values.append(spec.parse(token))
    if not values:
        raise ValueError(f"axis {name!r} has no values (expected name=v1[,v2...])")
    return spec.name, tuple(values)


def validate_overrides(overrides: Mapping[str, object]) -> Dict[str, object]:
    """Canonicalize an ``{axis: value}`` mapping, rejecting unknown axes.

    The single validation path shared by :class:`SearchSpace` construction and
    :class:`~repro.tuning.presets.Preset` loading, so a hand-edited preset
    file fails with the same diagnostics as a bad ``--axis`` flag.
    """
    canonical: Dict[str, object] = {}
    for name, value in overrides.items():
        spec = _resolve_axis(name)
        if spec.kind == "str":  # the lazily validated "pipeline" axis
            canonical[name] = _validate_pipeline(value)
        else:
            canonical[name] = spec.validate_value(value)
    return canonical


# --------------------------------------------------------------------------- #
# Search space
# --------------------------------------------------------------------------- #
class SearchSpace:
    """An ordered set of named axes, each with a finite value list.

    Axis order is the grid order: ``grid()`` walks the cartesian product with
    the *last* axis varying fastest (``itertools.product`` semantics), which
    is deterministic and seed-independent.  Construction validates axis names
    against :data:`AXES` and every value against the axis's registry or type;
    duplicate values in one axis are rejected (they would produce duplicate
    grid points).
    """

    def __init__(self, axes: Mapping[str, Sequence]):
        if not axes:
            raise ValueError("a search space needs at least one axis")
        resolved: List[Tuple[str, Tuple[object, ...]]] = []
        for name, values in axes.items():
            spec = _resolve_axis(name)
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if spec.kind == "str":
                canonical = tuple(_validate_pipeline(v) for v in values)
            else:
                canonical = tuple(spec.validate_value(v) for v in values)
            if len(set(canonical)) != len(canonical):
                raise ValueError(
                    f"axis {name!r} has duplicate values after canonicalization: "
                    f"{list(canonical)}"
                )
            resolved.append((name, canonical))
        self.axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = tuple(resolved)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of grid points (product of the axis value counts)."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def names(self) -> List[str]:
        """Axis names, in grid (declaration) order."""
        return [name for name, _ in self.axes]

    def grid(self) -> List[Dict[str, object]]:
        """Every axis combination, in deterministic grid order."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*value_lists)]

    def as_dict(self) -> List[List[object]]:
        """JSON form: ``[[axis, [values...]], ...]`` preserving grid order."""
        return [[name, list(values)] for name, values in self.axes]

    def describe(self) -> str:
        """Compact one-line label (CLI headers and bench logs)."""
        parts = [f"{name}={{{', '.join(str(v) for v in values)}}}"
                 for name, values in self.axes]
        return " x ".join(parts)

    def __eq__(self, other) -> bool:
        return isinstance(other, SearchSpace) and self.axes == other.axes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SearchSpace({self.describe()})"


def default_search_space(scenario) -> SearchSpace:
    """The out-of-the-box space for a scenario's execution kind.

    Training scenarios sweep the execution/sync/RPC seams (the knobs that move
    critical path); serving scenarios sweep capacity and hot-tier eviction
    (the knobs that move the latency tail).  Both are deliberately small —
    ``repro tune --axis`` overrides them for anything bespoke.
    """
    if ENGINES.resolve(scenario.engine) == "serving":
        return SearchSpace({
            "trainers_per_machine": (2, 3),
            "cache.eviction": ("lru", "clock"),
        })
    return SearchSpace({
        "engine": ("async",),
        "sync": ("allreduce-barrier", "bounded-staleness"),
        "staleness": (1, 2),
        "rpc": ("per-call", "batched"),
    })


# --------------------------------------------------------------------------- #
# Applying axis overrides to a scenario
# --------------------------------------------------------------------------- #
def apply_axis_overrides(scenario, overrides: Mapping[str, object]):
    """A new :class:`ClusterScenario` with the axis values applied.

    Top-level axes route through ``scenario.with_overrides`` (unknown-field
    rejection included); dotted axes rebuild the nested config
    (:class:`CacheConfig` / :class:`PrefetchConfig` / :class:`ServingSpec`)
    with each config's own eager validation.  ``cache.*`` axes on a scenario
    with no cache config also select the ``tiered-cache`` pipeline — the same
    auto-selection ``repro run --cache-tiers`` performs — so the tuned tiers
    are actually in the data path.
    """
    overrides = validate_overrides(overrides)
    grouped: Dict[str, Dict[str, object]] = {}
    for name, value in overrides.items():
        spec = AXES[name]
        grouped.setdefault(spec.target, {})[spec.field] = value

    fields: Dict[str, object] = dict(grouped.get("scenario", {}))
    if "cache" in grouped:
        base = scenario.cache_config
        if base is None:
            base = CacheConfig()
            fields.setdefault("pipeline", "tiered-cache")
        fields["cache_config"] = replace(base, **grouped["cache"])
    if "prefetch" in grouped:
        base = scenario.prefetch_config or PrefetchConfig()
        fields["prefetch_config"] = replace(base, **grouped["prefetch"])
    if "serving" in grouped:
        if scenario.serving is None:
            raise ValueError(
                f"serving.* axes require a serving scenario, but "
                f"{scenario.name!r} has no ServingSpec"
            )
        fields["serving"] = replace(scenario.serving, **grouped["serving"])
    return scenario.with_overrides(**fields) if fields else scenario


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
SEARCH_STRATEGIES = Registry("search strategy")


@SEARCH_STRATEGIES.register("grid", aliases=("exhaustive",))
class GridStrategy:
    """Exhaustive sweep: the grid in deterministic axis order, budget-truncated."""

    name = "grid"

    def candidates(self, space: SearchSpace, budget: Optional[int] = None,
                   seed: int = 0) -> List[Dict[str, object]]:
        """The first *budget* grid points (all of them when budget is None)."""
        points = space.grid()
        return points if budget is None else points[: max(0, int(budget))]


@SEARCH_STRATEGIES.register("random", aliases=("seeded-random", "shuffle"))
class RandomStrategy:
    """Seeded sampling without replacement: a permutation of the grid.

    With ``budget >= space.size`` every grid point is still visited (the
    permutation is exhaustive), so a generous random budget never silently
    skips configurations — only the visit order depends on the seed.
    """

    name = "random"

    def candidates(self, space: SearchSpace, budget: Optional[int] = None,
                   seed: int = 0) -> List[Dict[str, object]]:
        """A seed-keyed permutation of the grid, budget-truncated."""
        points = space.grid()
        rng = np.random.default_rng(derive_seed(seed, _STRATEGY_SALT))
        order = rng.permutation(len(points))
        shuffled = [points[i] for i in order]
        return shuffled if budget is None else shuffled[: max(0, int(budget))]
