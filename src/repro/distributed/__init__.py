"""DistDGL-like distributed substrate: KVStore, RPC, servers, cluster, DDP."""

from repro.distributed.clock import SimClock, mean_breakdown, merge_breakdowns, synchronize
from repro.distributed.cluster import ClusterConfig, SimCluster, TrainerContext
from repro.distributed.cost_model import BYTES_PER_FEATURE, CostModel
from repro.distributed.ddp import (
    allreduce_gradients,
    allreduce_time,
    check_replicas_consistent,
    gradient_num_elements,
)
from repro.distributed.kvstore import KVStore, KVStoreStats
from repro.distributed.rpc import RPCChannel, RPCStats, aggregate_rpc_stats
from repro.distributed.server import PartitionServer

__all__ = [
    "SimClock",
    "mean_breakdown",
    "merge_breakdowns",
    "synchronize",
    "ClusterConfig",
    "SimCluster",
    "TrainerContext",
    "BYTES_PER_FEATURE",
    "CostModel",
    "allreduce_gradients",
    "allreduce_time",
    "check_replicas_consistent",
    "gradient_num_elements",
    "KVStore",
    "KVStoreStats",
    "RPCChannel",
    "RPCStats",
    "aggregate_rpc_stats",
    "PartitionServer",
]
