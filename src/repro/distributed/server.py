"""Partition servers: one KVStore-backed server per machine (DistDGL style).

DistDGL runs one server process per machine that owns a partition's graph
structure and node features.  :class:`PartitionServer` is the simulated
equivalent — it wraps the partition's :class:`~repro.distributed.kvstore.KVStore`
and exposes the queries a trainer needs (feature pulls, degree lookups for
prefetch initialization, label pulls for loss computation).

Under elastic membership a partition can outlive its home machine: when every
trainer on a machine leaves, the partition is adopted by a surviving machine.
``host_machine`` tracks the current host (initially the partition id itself)
and :meth:`re_register` re-points it — ownership stays a lookup that can be
re-pointed at runtime, with the row movement costed by the engine.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.kvstore import KVStore
from repro.graph.halo import GraphPartition
from repro.utils.validation import check_1d_int_array


class PartitionServer:
    """Server process analog for one graph partition."""

    def __init__(
        self,
        partition: GraphPartition,
        features: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        kvstore: Optional[KVStore] = None,
    ):
        self.partition = partition
        self.part_id = partition.part_id
        if kvstore is None:
            kvstore = KVStore(
                owned_global=partition.owned_global,
                features=features[partition.owned_global],
                part_id=partition.part_id,
            )
        elif kvstore.part_id != partition.part_id:
            raise ValueError(
                f"kvstore belongs to partition {kvstore.part_id}, "
                f"expected {partition.part_id}"
            )
        self.kvstore = kvstore
        self._labels = labels
        self.host_machine = partition.part_id
        self.migrations = 0

    # ------------------------------------------------------------------ #
    @property
    def num_owned(self) -> int:
        return self.partition.num_owned

    @property
    def feature_dim(self) -> int:
        return self.kvstore.feature_dim

    def pull_features(self, global_ids: np.ndarray, *, remote: bool = False) -> np.ndarray:
        """Feature rows for owned *global_ids* (delegates to the KVStore)."""
        return self.kvstore.pull(global_ids, remote=remote)

    def pull_labels(self, global_ids: np.ndarray) -> np.ndarray:
        """Labels for owned nodes (trainers only need labels of their seeds)."""
        if self._labels is None:
            raise RuntimeError("server was constructed without labels")
        global_ids = check_1d_int_array(global_ids, "global_ids")
        return self._labels[global_ids]

    def node_degrees(self, global_ids: np.ndarray) -> np.ndarray:
        """Global degrees for nodes present in this partition (owned or halo)."""
        local = self.partition.local_ids(global_ids)
        return self.partition.global_degrees[local]

    def re_register(self, new_host: int) -> None:
        """Re-point this partition at a new host machine (elastic adoption)."""
        new_host = int(new_host)
        if new_host < 0:
            raise ValueError(f"host machine must be >= 0, got {new_host}")
        self.host_machine = new_host
        self.migrations += 1

    def stats(self) -> Dict[str, int]:
        return self.kvstore.stats.as_dict()

    def reset_stats(self) -> None:
        self.kvstore.reset_stats()
