"""Key-value feature store (DistDGL KVStore analog).

Each machine in a DistDGL deployment runs a server process holding the node
features of its partition in a KVStore.  Trainers pull locally owned features
straight from the co-located store (a memory copy) and remotely owned ("halo")
features over RPC from the owning machine's store.

:class:`KVStore` holds one partition's feature rows keyed by **global** node
id (internally a sorted-id + row-matrix layout with ``searchsorted`` lookups),
and counts how many rows and bytes it has served — those counters feed the
Fig. 11 RPC-reduction analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.distributed.cost_model import BYTES_PER_FEATURE
from repro.utils.validation import check_1d_int_array, check_2d_float_array


@dataclass
class KVStoreStats:
    """Cumulative service counters for one KVStore."""

    local_pulls: int = 0
    local_rows: int = 0
    remote_pulls: int = 0
    remote_rows: int = 0
    bytes_served_remote: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "local_pulls": self.local_pulls,
            "local_rows": self.local_rows,
            "remote_pulls": self.remote_pulls,
            "remote_rows": self.remote_rows,
            "bytes_served_remote": self.bytes_served_remote,
        }


class KVStore:
    """Feature rows for the nodes owned by one partition."""

    def __init__(self, owned_global: np.ndarray, features: np.ndarray, part_id: int = 0):
        owned_global = check_1d_int_array(owned_global, "owned_global")
        features = check_2d_float_array(features, "features")
        if len(owned_global) != len(features):
            raise ValueError(
                f"owned_global ({len(owned_global)}) and features ({len(features)}) must align"
            )
        order = np.argsort(owned_global)
        self._ids = owned_global[order]
        self._rows = features[order]
        self.part_id = int(part_id)
        self.stats = KVStoreStats()

    @classmethod
    def from_shared(cls, ids: np.ndarray, rows: np.ndarray, part_id: int = 0) -> "KVStore":
        """Adopt pre-sorted id/row arrays without copying (memmap-backed stores).

        ``__init__`` argsorts and fancy-indexes its inputs, which would
        materialize a private writable copy of a memory-mapped export.  This
        constructor instead takes arrays already in the store's internal
        layout — *ids* sorted strictly ascending, *rows* aligned row-for-row —
        and aliases them directly, so worker processes share the exporting
        process's pages.  Read-only inputs stay read-only: ``push`` raises.
        """
        ids = np.asarray(ids)
        rows = np.asarray(rows)
        if ids.ndim != 1 or not np.issubdtype(ids.dtype, np.integer):
            raise ValueError("ids must be a 1-D integer array")
        if rows.ndim != 2 or len(ids) != len(rows):
            raise ValueError("rows must be 2-D and align with ids")
        if len(ids) > 1 and not bool(np.all(ids[1:] > ids[:-1])):
            raise ValueError("ids must be sorted strictly ascending")
        store = cls.__new__(cls)
        store._ids = ids
        store._rows = rows
        store.part_id = int(part_id)
        store.stats = KVStoreStats()
        return store

    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(len(self._ids))

    @property
    def feature_dim(self) -> int:
        return int(self._rows.shape[1])

    def nbytes(self) -> int:
        return int(self._rows.nbytes + self._ids.nbytes)

    def owned_ids(self) -> np.ndarray:
        """Sorted global ids stored here."""
        return self._ids.copy()

    def shared_arrays(self) -> "tuple":
        """The internal ``(ids, rows)`` arrays in store layout.

        Used by the shared-memory exporter (:mod:`repro.features.shared`) so
        worker processes can adopt the exact layout via :meth:`from_shared`.
        Callers must treat the arrays as read-only.
        """
        return self._ids, self._rows

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if self.num_rows == 0:
            return np.zeros(len(global_ids), dtype=bool)
        idx = np.searchsorted(self._ids, global_ids)
        idx = np.minimum(idx, self.num_rows - 1)
        return self._ids[idx] == global_ids

    # ------------------------------------------------------------------ #
    def pull(self, global_ids: np.ndarray, *, remote: bool = False) -> np.ndarray:
        """Fetch feature rows for *global_ids* (all must be owned here).

        ``remote`` marks the pull as served over RPC for accounting purposes.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            return np.zeros((0, self.feature_dim), dtype=np.float32)
        idx = np.searchsorted(self._ids, global_ids)
        if np.any(idx >= self.num_rows) or np.any(self._ids[np.minimum(idx, self.num_rows - 1)] != global_ids):
            missing = global_ids[
                (idx >= self.num_rows)
                | (self._ids[np.minimum(idx, self.num_rows - 1)] != global_ids)
            ][:5]
            raise KeyError(
                f"KVStore for partition {self.part_id} does not own nodes {missing.tolist()}"
            )
        rows = self._rows[idx]
        nbytes = rows.size * BYTES_PER_FEATURE
        if remote:
            self.stats.remote_pulls += 1
            self.stats.remote_rows += len(global_ids)
            self.stats.bytes_served_remote += int(nbytes)
        else:
            self.stats.local_pulls += 1
            self.stats.local_rows += len(global_ids)
        return rows

    def push(self, global_ids: np.ndarray, values: np.ndarray) -> None:
        """Overwrite stored rows (used by tests and by feature-update extensions)."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        values = check_2d_float_array(values, "values", columns=self.feature_dim)
        idx = np.searchsorted(self._ids, global_ids)
        if np.any(self._ids[np.minimum(idx, self.num_rows - 1)] != global_ids):
            raise KeyError("push contains node ids not owned by this KVStore")
        self._rows[idx] = values

    def reset_stats(self) -> None:
        self.stats = KVStoreStats()
