"""Analytical cost model for the simulated cluster.

The paper's evaluation runs on NERSC Perlmutter (AMD EPYC 7763 CPU nodes and
A100 GPU nodes over Slingshot 11).  This environment is a single machine, so
execution *time* is simulated: every component of a training step — sampling,
local feature copy, remote RPC pulls, scoreboard maintenance, buffer lookup,
and the DDP forward/backward/update — is charged according to a
:class:`CostModel` whose constants are loosely calibrated to the hardware the
paper reports.

The absolute values do not matter for the reproduction; what matters is the
*relationships* the paper's analysis (Section IV-C) hinges on:

* GPU compute is ~20x faster than CPU compute, so ``t_DDP`` shrinks on the GPU
  backend and perfect overlap becomes harder (Fig. 9, Fig. 6 e–h);
* remote feature pulls pay a per-request latency plus a bandwidth term, so
  shaving remote nodes off the request reduces ``t_RPC`` roughly linearly
  (Fig. 11);
* local copies are an order of magnitude faster than network pulls, so hits in
  the prefetch buffer effectively remove their cost from the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.utils.validation import check_positive

BYTES_PER_FEATURE = 4  # float32


@dataclass(frozen=True)
class CostModel:
    """Per-component time constants (seconds, bytes/second, FLOP/s)."""

    backend: str = "cpu"
    # Network (RPC) path: per-request latency + payload over bandwidth.  The
    # effective per-node bandwidth is deliberately modest — DistDGL's RPC path
    # serializes feature tensors through Python, so the achievable goodput is
    # far below line rate.
    rpc_latency_s: float = 5.0e-4
    network_bandwidth_Bps: float = 1.0e9
    # Local memory copy from the co-located KVStore.
    copy_bandwidth_Bps: float = 2.0e10
    # Sampling cost per traversed/sampled edge.
    sample_cost_per_edge_s: float = 5.0e-8
    # Prefetch buffer membership lookup per candidate node.
    lookup_cost_per_node_s: float = 1.5e-8
    # Scoreboard (S_E decay + S_A update) per touched node.
    scoring_cost_per_node_s: float = 2.0e-8
    # Eviction round: per-buffer-slot assessment plus replacement bookkeeping.
    eviction_cost_per_node_s: float = 4.0e-8
    # Model compute (forward+backward+update) throughput.
    compute_flops_per_s: float = 2.5e10
    # Gradient allreduce: latency + 2*(N-1)/N * bytes / bandwidth (ring).
    allreduce_latency_s: float = 1.0e-4
    allreduce_bandwidth_Bps: float = 5.0e9

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def cpu(cls) -> "CostModel":
        """CPU training preset (PyTorch Gloo-style): slow compute, so DDP time
        dominates and minibatch preparation overlaps perfectly."""
        return cls(backend="cpu")

    @classmethod
    def gpu(cls) -> "CostModel":
        """GPU training preset (A100-style): ~5x faster effective minibatch
        compute (kernel-launch overheads keep small sampled minibatches far
        from peak FLOPs) and a faster allreduce fabric (NCCL).  The smaller
        DDP window shrinks the room available for overlapping minibatch
        preparation, which is why the paper's GPU gains trail its CPU gains."""
        return cls(
            backend="gpu",
            compute_flops_per_s=1.2e11,
            allreduce_latency_s=3.0e-5,
            allreduce_bandwidth_Bps=5.0e10,
        )

    @classmethod
    def preset(cls, backend: str) -> "CostModel":
        if backend == "cpu":
            return cls.cpu()
        if backend == "gpu":
            return cls.gpu()
        raise ValueError(f"unknown backend {backend!r}; expected 'cpu' or 'gpu'")

    def scaled(self, **multipliers: float) -> "CostModel":
        """Return a copy with selected fields multiplied (for sensitivity studies)."""
        updates: Dict[str, float] = {}
        for name, factor in multipliers.items():
            if not hasattr(self, name):
                raise AttributeError(f"CostModel has no field {name!r}")
            updates[name] = getattr(self, name) * factor
        return replace(self, **updates)

    # ------------------------------------------------------------------ #
    # Component times
    # ------------------------------------------------------------------ #
    def time_sampling(self, num_edges: int) -> float:
        """Neighbor sampling time for a minibatch with *num_edges* sampled edges."""
        return max(0, num_edges) * self.sample_cost_per_edge_s

    def time_rpc(self, num_nodes: int, feature_dim: int, num_requests: int = 1) -> float:
        """Remote pull of *num_nodes* feature rows split across *num_requests* RPCs."""
        if num_nodes <= 0:
            return 0.0
        payload = num_nodes * feature_dim * BYTES_PER_FEATURE
        return max(1, num_requests) * self.rpc_latency_s + payload / self.network_bandwidth_Bps

    def time_rpc_batched(
        self, num_nodes: int, feature_dim: int, num_new_requests: int
    ) -> float:
        """Coalesced remote pull: latency only for newly opened wire requests.

        Rows riding an already-open per-owner request (or served from the
        step's coalescing window) pay bandwidth but no additional latency;
        a pull that moves nothing costs nothing.
        """
        payload = max(0, num_nodes) * feature_dim * BYTES_PER_FEATURE
        return (
            max(0, num_new_requests) * self.rpc_latency_s
            + payload / self.network_bandwidth_Bps
        )

    def time_copy(self, num_nodes: int, feature_dim: int) -> float:
        """Local copy of *num_nodes* feature rows from the co-located KVStore."""
        if num_nodes <= 0:
            return 0.0
        payload = num_nodes * feature_dim * BYTES_PER_FEATURE
        return payload / self.copy_bandwidth_Bps

    def time_lookup(self, num_nodes: int) -> float:
        """Prefetch-buffer membership test for *num_nodes* sampled halo nodes."""
        return max(0, num_nodes) * self.lookup_cost_per_node_s

    def time_scoring(self, num_nodes: int) -> float:
        """Scoreboard maintenance (decay + access increments) for *num_nodes*."""
        return max(0, num_nodes) * self.scoring_cost_per_node_s

    def time_eviction(self, buffer_size: int, num_replaced: int) -> float:
        """One eviction round over a buffer of *buffer_size* slots."""
        return (
            max(0, buffer_size) * self.eviction_cost_per_node_s
            + max(0, num_replaced) * self.eviction_cost_per_node_s
        )

    def time_compute(self, flops: float) -> float:
        """Forward + backward + parameter update time for *flops* floating ops."""
        return max(0.0, flops) / self.compute_flops_per_s

    def time_migration(self, num_bytes: int) -> float:
        """Bulk state movement (partition adoption, seed re-split, checkpoint
        restore): one RPC latency plus the payload over network bandwidth."""
        if num_bytes <= 0:
            return 0.0
        return self.rpc_latency_s + num_bytes / self.network_bandwidth_Bps

    def time_allreduce(self, num_params: int, world_size: int) -> float:
        """Ring-allreduce time for *num_params* float32 gradients across *world_size* trainers."""
        if world_size <= 1:
            return 0.0
        payload = num_params * BYTES_PER_FEATURE
        ring_factor = 2.0 * (world_size - 1) / world_size
        return self.allreduce_latency_s + ring_factor * payload / self.allreduce_bandwidth_Bps

    def validate(self) -> None:
        """Sanity-check that all constants are positive."""
        for name in (
            "rpc_latency_s",
            "network_bandwidth_Bps",
            "copy_bandwidth_Bps",
            "sample_cost_per_edge_s",
            "lookup_cost_per_node_s",
            "scoring_cost_per_node_s",
            "eviction_cost_per_node_s",
            "compute_flops_per_s",
            "allreduce_latency_s",
            "allreduce_bandwidth_Bps",
        ):
            check_positive(getattr(self, name), name)


class CongestedCostModel:
    """A time-varying view over a base :class:`CostModel` (congested RPC link).

    Wraps the RPC-facing methods so that per-request latency is multiplied
    and effective network bandwidth divided according to a
    :class:`~repro.events.schedule.CongestionSpec` evaluated at the owning
    trainer's **current simulated time** (read from its
    :class:`~repro.distributed.clock.SimClock` at call time).  Everything
    else — copy/compute/allreduce times, the preset constants — delegates to
    the base model untouched, so only the remote-fetch path feels the bursts.

    Installed per trainer by :class:`~repro.distributed.cluster.SimCluster`
    when the :class:`~repro.distributed.cluster.ClusterConfig` carries a
    ``congestion`` spec; deterministic because simulated time is.
    """

    def __init__(self, base: CostModel, spec, clock):
        self.base = base
        self.spec = spec
        self.clock = clock

    def _factors(self) -> "tuple[float, float]":
        return self.spec.factors_at(self.clock.time)

    def time_rpc(self, num_nodes: int, feature_dim: int, num_requests: int = 1) -> float:
        """Congestion-scaled :meth:`CostModel.time_rpc`."""
        if num_nodes <= 0:
            return 0.0
        latency_mult, bandwidth_div = self._factors()
        payload = num_nodes * feature_dim * BYTES_PER_FEATURE
        return (
            max(1, num_requests) * self.base.rpc_latency_s * latency_mult
            + payload * bandwidth_div / self.base.network_bandwidth_Bps
        )

    def time_rpc_batched(
        self, num_nodes: int, feature_dim: int, num_new_requests: int
    ) -> float:
        """Congestion-scaled :meth:`CostModel.time_rpc_batched`."""
        latency_mult, bandwidth_div = self._factors()
        payload = max(0, num_nodes) * feature_dim * BYTES_PER_FEATURE
        return (
            max(0, num_new_requests) * self.base.rpc_latency_s * latency_mult
            + payload * bandwidth_div / self.base.network_bandwidth_Bps
        )

    def __getattr__(self, name: str):
        # Fields and non-RPC component times come from the base model, so the
        # wrapper is a drop-in CostModel wherever channels/sources expect one.
        return getattr(self.base, name)
