"""Simulated cluster: machines, partition servers, and trainer contexts.

The paper's deployment is "one partition per machine, four trainers per
machine".  :class:`SimCluster` reproduces that topology in-process:

* the input graph is partitioned into ``num_machines`` partitions (METIS-like
  by default, matching DGL's partition API);
* each machine gets a :class:`~repro.distributed.server.PartitionServer`
  holding its partition's features in a KVStore;
* each machine spawns ``trainers_per_machine`` :class:`TrainerContext` objects
  — each with its own share of the training seeds, its own data loader, its
  own RPC channel, and its own simulated clock.

The cluster object is consumed by both the baseline and the MassiveGNN
training loops, so the two pipelines see identical partitions, seeds, and
samplers (modulo sampler RNG streams, which are per-trainer in both cases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.clock import SimClock
from repro.distributed.cost_model import CongestedCostModel, CostModel
from repro.distributed.kvstore import KVStore
from repro.distributed.rpc import (
    RPC_CHANNELS,
    CoalescingWindow,
    RPCChannel,
    build_rpc_channel,
)
from repro.distributed.server import PartitionServer
from repro.graph.datasets import GraphDataset
from repro.graph.halo import GraphPartition, build_partitions
from repro.graph.partition import PartitionResult, partition_graph
from repro.graph.partition_book import PartitionBook
from repro.sampling.dataloader import DistDataLoader
from repro.sampling.seeds import SeedPartitioner
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.events.schedule import CongestionSpec


@dataclass
class ClusterConfig:
    """Topology and loader configuration for a simulated cluster.

    ``compute_multipliers`` makes the cluster heterogeneous: entry *m* is the
    relative compute slowdown of machine *m* (``1.0`` nominal, ``2.0`` means
    that machine's trainers compute twice as slowly — a straggler).  ``None``
    means a homogeneous cluster.

    ``sampler`` and ``rpc`` select hot-path implementations by registry key:
    :data:`repro.sampling.neighbor_sampler.SAMPLERS` (``"legacy"`` default,
    ``"vectorized"`` for the batched fan-out draw) and
    :data:`repro.distributed.rpc.RPC_CHANNELS` (``"per-call"`` default,
    ``"batched"`` for per-machine owner coalescing).

    ``congestion`` (a :class:`~repro.events.schedule.CongestionSpec`) makes
    the RPC fabric time-varying: every trainer's channel charges remote pulls
    through a :class:`~repro.distributed.cost_model.CongestedCostModel` that
    reads the trainer's simulated clock, so latency bursts hit whichever
    steps overlap them.  ``None`` (the default) keeps the static cost model.
    """

    num_machines: int = 2
    trainers_per_machine: int = 4
    batch_size: int = 2000
    fanouts: Sequence[int] = (10, 25)
    partition_method: str = "metis"
    backend: str = "cpu"
    seed: int = 0
    compute_multipliers: Optional[Sequence[float]] = None
    sampler: str = "legacy"
    rpc: str = "per-call"
    # Hot-set drift (cache-stress scenarios): each epoch only a rotating
    # window of ``seed_active_fraction`` of a trainer's seeds is active,
    # advanced by ``seed_rotation`` of the seed set per epoch.  The defaults
    # (1.0 / 0.0) are the stationary full-set iteration every pre-existing
    # workload uses — bit-identical seed batches and RNG stream.
    seed_active_fraction: float = 1.0
    seed_rotation: float = 0.0
    # Time-varying RPC congestion (see repro.events.schedule.CongestionSpec);
    # None keeps the static preset cost model on every channel.
    congestion: Optional["CongestionSpec"] = None

    def __post_init__(self) -> None:
        check_positive(self.num_machines, "num_machines")
        check_positive(self.trainers_per_machine, "trainers_per_machine")
        check_positive(self.batch_size, "batch_size")
        if not 0.0 < self.seed_active_fraction <= 1.0:
            raise ValueError(
                f"seed_active_fraction must be in (0, 1], got {self.seed_active_fraction!r}"
            )
        if not 0.0 <= self.seed_rotation <= 1.0:
            raise ValueError(f"seed_rotation must be in [0, 1], got {self.seed_rotation!r}")
        if self.backend not in ("cpu", "gpu"):
            raise ValueError(f"backend must be 'cpu' or 'gpu', got {self.backend!r}")
        # Resolve registry keys eagerly so typos fail at config time with the
        # registry's list-of-valid-names error, not mid-run.
        from repro.sampling.neighbor_sampler import SAMPLERS

        self.sampler = SAMPLERS.resolve(self.sampler)
        self.rpc = RPC_CHANNELS.resolve(self.rpc)
        if self.compute_multipliers is not None:
            multipliers = tuple(float(m) for m in self.compute_multipliers)
            if len(multipliers) != self.num_machines:
                raise ValueError(
                    f"compute_multipliers needs one entry per machine "
                    f"({self.num_machines}), got {len(multipliers)}"
                )
            for m in multipliers:
                check_positive(m, "compute_multipliers entry")
            self.compute_multipliers = multipliers

    @property
    def world_size(self) -> int:
        """Total number of trainer processes."""
        return self.num_machines * self.trainers_per_machine

    def compute_multiplier(self, machine: int) -> float:
        """Relative compute slowdown of *machine* (1.0 when homogeneous)."""
        if self.compute_multipliers is None:
            return 1.0
        return float(self.compute_multipliers[machine])


@dataclass
class TrainerContext:
    """Everything one simulated trainer process owns."""

    global_rank: int
    machine: int
    local_rank: int
    partition: GraphPartition
    dataloader: DistDataLoader
    rpc: RPCChannel
    clock: SimClock
    seeds_local: np.ndarray
    labels: np.ndarray
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_batches_per_epoch(self) -> int:
        return self.dataloader.num_batches_per_epoch


class SimCluster:
    """In-process simulation of a DistDGL deployment."""

    def __init__(
        self,
        dataset: GraphDataset,
        config: ClusterConfig,
        cost_model: Optional[CostModel] = None,
        partition_result: Optional[PartitionResult] = None,
        server_rows: Optional[Dict[int, "tuple"]] = None,
    ):
        self.dataset = dataset
        self.config = config
        self.cost_model = cost_model or CostModel.preset(config.backend)
        self.cost_model.validate()

        if partition_result is None:
            partition_result = partition_graph(
                dataset.graph,
                config.num_machines,
                method=config.partition_method,
                seed=derive_seed(config.seed, 101),
            )
        if partition_result.num_parts != config.num_machines:
            raise ValueError(
                "partition_result has a different number of parts than num_machines"
            )
        self.partition_result = partition_result
        self.book = PartitionBook.from_result(partition_result)
        self.partitions: List[GraphPartition] = build_partitions(
            dataset.graph, partition_result, self.book
        )
        self.servers: Dict[int, KVStore] = {}
        self._server_objects: List[PartitionServer] = []
        # ``server_rows`` (worker processes) provides each partition's KVStore
        # payload as pre-sorted, typically memory-mapped arrays so the feature
        # matrix is shared with the exporting process instead of re-sliced.
        for partition in self.partitions:
            if server_rows is not None and partition.part_id in server_rows:
                ids, rows = server_rows[partition.part_id]
                kvstore = KVStore.from_shared(ids, rows, part_id=partition.part_id)
                server = PartitionServer(
                    partition, dataset.features, dataset.labels, kvstore=kvstore
                )
            else:
                server = PartitionServer(partition, dataset.features, dataset.labels)
            self._server_objects.append(server)
            self.servers[partition.part_id] = server.kvstore

        # One coalescing window per machine when the batched channel is
        # selected: the machine's trainers share it, which is what lets their
        # same-step pulls merge (DistDGL's per-machine batched KV client).
        self._rpc_windows: List[Optional[CoalescingWindow]] = [
            CoalescingWindow() if config.rpc == "batched" else None
            for _ in range(config.num_machines)
        ]
        # Machine-shared cache tiers, created lazily per run when a two-tier
        # CacheConfig is in play (see shared_cache_tier); reset() drops them
        # so consecutive runs start cold like everything else.
        self._shared_cache_tiers: Dict[int, object] = {}
        self.trainers: List[TrainerContext] = self._spawn_trainers()
        # Pristine seed assignment, kept so reset() can undo elastic
        # re-splits (identity comparison keeps the non-elastic path free).
        self._original_seeds: List[np.ndarray] = [
            t.seeds_local for t in self.trainers
        ]

    # ------------------------------------------------------------------ #
    def _spawn_trainers(self) -> List[TrainerContext]:
        config = self.config
        trainers: List[TrainerContext] = []
        train_mask = self.dataset.train_mask
        for machine in range(config.num_machines):
            partition = self.partitions[machine]
            owned = partition.owned_global
            train_local = np.nonzero(train_mask[owned])[0].astype(np.int64)
            seed_partitioner = SeedPartitioner(
                train_local,
                config.trainers_per_machine,
                seed=derive_seed(config.seed, 211, machine),
            )
            for local_rank in range(config.trainers_per_machine):
                global_rank = machine * config.trainers_per_machine + local_rank
                seeds_local = seed_partitioner.trainer_seeds(local_rank)
                dataloader = DistDataLoader(
                    partition=partition,
                    seeds_local=seeds_local,
                    fanouts=config.fanouts,
                    batch_size=config.batch_size,
                    labels=self.dataset.labels,
                    seed=derive_seed(config.seed, 307, global_rank),
                    sampler=config.sampler,
                    seed_active_fraction=config.seed_active_fraction,
                    seed_rotation=config.seed_rotation,
                )
                # The clock exists before the channel so a congested fabric
                # can read the trainer's simulated time at fetch time.
                clock = SimClock()
                channel_cost_model = self.cost_model
                if config.congestion is not None:
                    channel_cost_model = CongestedCostModel(
                        self.cost_model, config.congestion, clock
                    )
                rpc = build_rpc_channel(
                    config.rpc,
                    self.servers,
                    local_part=machine,
                    cost_model=channel_cost_model,
                    window=self._rpc_windows[machine],
                )
                trainers.append(
                    TrainerContext(
                        global_rank=global_rank,
                        machine=machine,
                        local_rank=local_rank,
                        partition=partition,
                        dataloader=dataloader,
                        rpc=rpc,
                        clock=clock,
                        seeds_local=seeds_local,
                        labels=self.dataset.labels,
                    )
                )
        return trainers

    # ------------------------------------------------------------------ #
    @property
    def world_size(self) -> int:
        return self.config.world_size

    @property
    def server_objects(self) -> List[PartitionServer]:
        return self._server_objects

    def trainer(self, global_rank: int) -> TrainerContext:
        return self.trainers[global_rank]

    def partition_of_machine(self, machine: int) -> GraphPartition:
        return self.partitions[machine]

    def shared_cache_tier(self, machine: int, cache_config) -> "CacheTier":
        """The machine's shared :class:`~repro.cache.tier.CacheTier` (lazily built).

        Every trainer on *machine* composes the same instance behind its hot
        tier; each trainer funds its own capacity contribution when its
        source is built, so the tier's capacity is the machine's total.  The
        tier starts empty at capacity 0 and is dropped by :meth:`reset`.
        """
        from repro.cache.tier import CacheTier
        from repro.features.sources import halo_degree_lookup, halo_distance_lookup

        tier = self._shared_cache_tiers.get(machine)
        if tier is None:
            partition = self.partitions[machine]
            tier = CacheTier(
                "shared",
                0,
                self.dataset.feature_dim,
                admission=cache_config.shared_admission,
                eviction=cache_config.shared_eviction,
                degree_of=halo_degree_lookup(partition),
                scorer=getattr(cache_config, "scorer", "decayed"),
                distance_of=halo_distance_lookup(partition),
                record_decisions=getattr(cache_config, "record_decisions", False),
            )
            self._shared_cache_tiers[machine] = tier
        return tier

    # ------------------------------------------------------------------ #
    # Elastic membership: seed re-splits and partition adoption
    # ------------------------------------------------------------------ #
    def partition_host(self, machine: int) -> int:
        """The machine currently hosting partition *machine* (itself until
        an elastic drain migrates the partition to a surviving machine)."""
        return self._server_objects[machine].host_machine

    def rebalance_seeds(
        self, machine: int, active_local_ranks: Sequence[int], salt: int
    ) -> Dict[int, int]:
        """Re-split *machine*'s training seeds across its active trainers.

        Re-runs the :class:`SeedPartitioner` over the machine's training
        nodes with only ``active_local_ranks`` as targets (salted so each
        rebalance draws a fresh deterministic split), mutates every affected
        trainer's loader in place, and returns ``{global_rank: seeds_gained}``
        — the number of seed rows newly assigned to each active trainer,
        which the engine charges as migration traffic.  Inactive trainers on
        the machine are stripped to an empty assignment.
        """
        config = self.config
        active = sorted(int(r) for r in active_local_ranks)
        if not active:
            raise ValueError(f"machine {machine} has no active trainers to rebalance")
        partition = self.partitions[machine]
        train_local = np.nonzero(self.dataset.train_mask[partition.owned_global])[0]
        train_local = train_local.astype(np.int64)
        seed_partitioner = SeedPartitioner(
            train_local,
            len(active),
            seed=derive_seed(config.seed, 211, machine, int(salt)),
        )
        gained: Dict[int, int] = {}
        empty = np.zeros(0, dtype=np.int64)
        for local_rank in range(config.trainers_per_machine):
            global_rank = machine * config.trainers_per_machine + local_rank
            trainer = self.trainers[global_rank]
            if local_rank in active:
                new_seeds = seed_partitioner.trainer_seeds(active.index(local_rank))
                gained[global_rank] = int(
                    np.setdiff1d(new_seeds, trainer.seeds_local).size
                )
                trainer.seeds_local = new_seeds
                trainer.dataloader.reassign_seeds(new_seeds)
            elif len(trainer.seeds_local):
                trainer.seeds_local = empty
                trainer.dataloader.reassign_seeds(empty)
        return gained

    def migrate_partition(
        self, part_id: int, new_host: int, cache_policy: str = "invalidate"
    ) -> int:
        """Adopt partition *part_id* onto *new_host*, returning bytes moved.

        Re-points the :class:`~repro.distributed.server.PartitionServer`
        registration and returns the KVStore payload size (plus the shared
        cache tier's rows under the ``"warm"`` policy — under
        ``"invalidate"`` the tier is dropped cold instead).  The caller
        charges the returned bytes through the cost model; a no-op move
        (already hosted there) returns 0.
        """
        server = self._server_objects[part_id]
        if server.host_machine == int(new_host):
            return 0
        nbytes = int(server.kvstore.nbytes())
        tier = self._shared_cache_tiers.get(part_id)
        if tier is not None:
            if cache_policy == "warm":
                nbytes += int(tier.nbytes())
            else:
                tier.invalidate()
        server.re_register(new_host)
        return nbytes

    def cost_model_for_machine(self, machine: int) -> CostModel:
        """Per-machine cost model honoring the config's compute multipliers.

        A slowdown of *s* divides the machine's compute throughput by *s*;
        with the default multiplier of 1.0 this is bit-identical to the shared
        cluster cost model (the differential tests rely on that).
        """
        slowdown = self.config.compute_multiplier(machine)
        return self.cost_model.scaled(compute_flops_per_s=1.0 / slowdown)

    def validate_seed_coverage(self) -> None:
        """Check every training seed is assigned to exactly one trainer.

        The two-level partitioning (graph partitions across machines, then
        :class:`SeedPartitioner` across a machine's trainers) must cover the
        dataset's training nodes exactly once — the invariant behind the
        paper's synchronous-DDP epoch semantics.  Raises ``ValueError`` on
        any gap or overlap.
        """
        assigned = []
        for trainer in self.trainers:
            if len(trainer.seeds_local):
                assigned.append(trainer.partition.owned_global[trainer.seeds_local])
        assigned_global = (
            np.concatenate(assigned) if assigned else np.zeros(0, dtype=np.int64)
        )
        if len(assigned_global) != len(np.unique(assigned_global)):
            raise ValueError("seed partitioning assigned some training node twice")
        expected = np.nonzero(self.dataset.train_mask)[0].astype(np.int64)
        if not np.array_equal(np.sort(assigned_global), expected):
            raise ValueError(
                "seed partitioning does not cover the training set exactly "
                f"({len(assigned_global)} assigned vs {len(expected)} training nodes)"
            )

    def reset(self) -> None:
        """Reset clocks, RPC counters, loader steps, and KVStore counters
        (and undo any elastic seed re-splits / partition adoptions)."""
        for trainer, original in zip(self.trainers, self._original_seeds):
            trainer.clock.reset()
            trainer.rpc.reset_stats()
            trainer.dataloader.reset()
            if trainer.seeds_local is not original:
                trainer.seeds_local = original
                trainer.dataloader.reassign_seeds(original)
        for server in self._server_objects:
            server.reset_stats()
            server.host_machine = server.part_id
            server.migrations = 0
        for window in self._rpc_windows:
            if window is not None:
                window.deactivate()
        self._shared_cache_tiers.clear()

    def average_remote_nodes_per_trainer(self) -> float:
        """Table III's 'average number of remote nodes per trainer' statistic.

        Every trainer on a machine shares the machine's partition, so this is
        the mean halo count over partitions (each trainer observes that many
        candidate remote nodes).
        """
        halos = [p.num_halo for p in self.partitions]
        return float(np.mean(halos)) if halos else 0.0

    def minibatches_per_trainer(self) -> int:
        """Minibatches per trainer per epoch (constant batch size, Table III)."""
        counts = [t.num_batches_per_epoch for t in self.trainers]
        return int(np.ceil(np.mean(counts))) if counts else 0

    def summary(self) -> Dict[str, float]:
        return {
            "num_machines": float(self.config.num_machines),
            "world_size": float(self.world_size),
            "edge_cut_fraction": self.partition_result.stats.get("edge_cut_fraction", 0.0),
            "avg_remote_nodes_per_trainer": self.average_remote_nodes_per_trainer(),
            "minibatches_per_trainer": float(self.minibatches_per_trainer()),
        }
