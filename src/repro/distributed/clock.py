"""Simulated per-trainer clocks and component time accounting.

Every trainer in the simulated cluster owns a :class:`SimClock`.  Components
of a training step advance the clock and tag the time with a component label
(``sampling``, ``rpc``, ``copy``, ``ddp``, ``lookup``, ``scoring``,
``eviction``, ``allreduce``, ``stall``, ``downtime``) so that the Fig. 9
style breakdowns can be regenerated exactly from the recorded ledger
(``downtime`` is the transient-failure outage the event-driven engine's
``trainer-flaky`` scenario injects, and ``migration`` is the data-movement
cost of elastic rebalances — seed-ownership re-splits, partition adoption,
and checkpoint-restore transfers).  The serving engine adds two labels of
its own: ``compute`` (forward-only inference, distinct from training's
``ddp``) and ``idle`` (a worker waiting for the next request to arrive —
wall time on the serving timeline, but not work).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List


KNOWN_COMPONENTS = (
    "sampling",
    "lookup",
    "scoring",
    "eviction",
    "rpc",
    "copy",
    "ddp",
    "allreduce",
    "stall",
    "downtime",
    "migration",
    "init",
    "other",
    "compute",
    "idle",
)


@dataclass
class SimClock:
    """Accumulates simulated time, broken down by component."""

    time: float = 0.0
    components: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def advance(self, seconds: float, component: str = "other") -> float:
        """Advance the clock by *seconds*, attributing it to *component*."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.time += seconds
        self.components[component] += seconds
        return self.time

    def advance_to(self, timestamp: float, component: str = "stall") -> float:
        """Advance the clock up to *timestamp* if it is in the future (barrier wait)."""
        if timestamp > self.time:
            self.advance(timestamp - self.time, component)
        return self.time

    def component_time(self, component: str) -> float:
        return float(self.components.get(component, 0.0))

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-component ledger."""
        return dict(self.components)

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable state: current time plus the component ledger."""
        return {"time": float(self.time), "components": dict(self.components)}

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind the clock to a :meth:`snapshot` (bit-exact)."""
        self.time = float(state["time"])
        self.components = defaultdict(float)
        for component, seconds in state["components"].items():  # type: ignore[union-attr]
            self.components[component] = float(seconds)

    def reset(self) -> None:
        self.time = 0.0
        self.components = defaultdict(float)


def synchronize(clocks: Iterable[SimClock], component: str = "stall") -> float:
    """Barrier: advance every clock to the maximum time (synchronous DDP step)."""
    clocks = list(clocks)
    if not clocks:
        return 0.0
    latest = max(c.time for c in clocks)
    for clock in clocks:
        clock.advance_to(latest, component)
    return latest


def merge_breakdowns(clocks: Iterable[SimClock]) -> Dict[str, float]:
    """Sum component ledgers across trainers (for cluster-wide breakdowns)."""
    total: Dict[str, float] = defaultdict(float)
    for clock in clocks:
        for component, seconds in clock.components.items():
            total[component] += seconds
    return dict(total)


def mean_breakdown(clocks: List[SimClock]) -> Dict[str, float]:
    """Average per-trainer component ledger."""
    if not clocks:
        return {}
    merged = merge_breakdowns(clocks)
    return {k: v / len(clocks) for k, v in merged.items()}
