"""Simulated RPC layer between trainers and partition feature servers.

In DistDGL every remote feature request travels over an RPC channel to the
owning machine's server.  Here the "network" is in-process, but the channel
records exactly what a real one would: how many requests were issued, how many
feature rows moved, how many bytes that represents, and — via the
:class:`~repro.distributed.cost_model.CostModel` — how long those transfers
would have taken.  Trainer-side stall time for communication is then derived
using the paper's Eq. 9 (``t_communication = t_RPC − t_copy``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.cost_model import BYTES_PER_FEATURE, CostModel
from repro.distributed.kvstore import KVStore
from repro.utils.validation import check_1d_int_array


@dataclass
class RPCStats:
    """Cumulative per-trainer RPC counters."""

    requests: int = 0
    nodes_fetched: int = 0
    bytes_fetched: int = 0
    simulated_time_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "nodes_fetched": self.nodes_fetched,
            "bytes_fetched": self.bytes_fetched,
            "simulated_time_s": self.simulated_time_s,
        }

    def merge(self, other: "RPCStats") -> "RPCStats":
        return RPCStats(
            requests=self.requests + other.requests,
            nodes_fetched=self.nodes_fetched + other.nodes_fetched,
            bytes_fetched=self.bytes_fetched + other.bytes_fetched,
            simulated_time_s=self.simulated_time_s + other.simulated_time_s,
        )


class RPCChannel:
    """A trainer's handle for pulling remote features from partition servers.

    Parameters
    ----------
    servers:
        Mapping from partition id to that partition's :class:`KVStore`.
    local_part:
        The partition co-located with this trainer; pulls from it are memory
        copies, not RPCs (and raise if routed through :meth:`remote_pull`).
    cost_model:
        Used to convert transfer sizes into simulated seconds.
    """

    def __init__(
        self,
        servers: Dict[int, KVStore],
        local_part: int,
        cost_model: Optional[CostModel] = None,
    ):
        self.servers = servers
        self.local_part = int(local_part)
        self.cost_model = cost_model or CostModel.cpu()
        self.stats = RPCStats()

    # ------------------------------------------------------------------ #
    def local_pull(self, global_ids: np.ndarray) -> Tuple[np.ndarray, float]:
        """Copy locally owned feature rows; returns (rows, simulated_copy_time)."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        store = self.servers[self.local_part]
        rows = store.pull(global_ids, remote=False)
        copy_time = self.cost_model.time_copy(len(global_ids), store.feature_dim)
        return rows, copy_time

    def remote_pull(
        self, global_ids: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, float, RPCStats]:
        """Pull remotely owned rows, grouped per owning partition.

        Parameters
        ----------
        global_ids:
            Global node ids to fetch (must not be owned locally).
        owners:
            Owning partition id per node (same length as ``global_ids``).

        Returns
        -------
        (rows, simulated_time, delta_stats):
            ``rows`` aligns with ``global_ids``; ``simulated_time`` is the RPC
            wall time charged to the calling trainer; ``delta_stats`` is the
            increment recorded for this call.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        owners = check_1d_int_array(owners, "owners")
        if len(global_ids) != len(owners):
            raise ValueError("global_ids and owners must align")
        if len(global_ids) == 0:
            dim = self.servers[self.local_part].feature_dim
            return np.zeros((0, dim), dtype=np.float32), 0.0, RPCStats()
        if np.any(owners == self.local_part):
            raise ValueError("remote_pull received locally owned nodes; use local_pull")

        dim = self.servers[self.local_part].feature_dim
        rows = np.zeros((len(global_ids), dim), dtype=np.float32)
        unique_owners = np.unique(owners)
        num_requests = 0
        for owner in unique_owners:
            mask = owners == owner
            ids = global_ids[mask]
            server = self.servers.get(int(owner))
            if server is None:
                raise KeyError(f"no server registered for partition {int(owner)}")
            rows[mask] = server.pull(ids, remote=True)
            num_requests += 1

        simulated = self.cost_model.time_rpc(len(global_ids), dim, num_requests=num_requests)
        delta = RPCStats(
            requests=num_requests,
            nodes_fetched=int(len(global_ids)),
            bytes_fetched=int(len(global_ids) * dim * BYTES_PER_FEATURE),
            simulated_time_s=simulated,
        )
        self.stats = self.stats.merge(delta)
        return rows, simulated, delta

    def reset_stats(self) -> None:
        self.stats = RPCStats()


def aggregate_rpc_stats(channels: List[RPCChannel]) -> RPCStats:
    """Sum RPC statistics across all trainers' channels."""
    total = RPCStats()
    for channel in channels:
        total = total.merge(channel.stats)
    return total
