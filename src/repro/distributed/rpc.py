"""Simulated RPC layer between trainers and partition feature servers.

In DistDGL every remote feature request travels over an RPC channel to the
owning machine's server.  Here the "network" is in-process, but the channel
records exactly what a real one would: how many requests were issued, how many
feature rows moved, how many bytes that represents, and — via the
:class:`~repro.distributed.cost_model.CostModel` — how long those transfers
would have taken.  Trainer-side stall time for communication is then derived
using the paper's Eq. 9 (``t_communication = t_RPC − t_copy``).

Two channel implementations are registered in :data:`RPC_CHANNELS`:

* ``"per-call"`` — :class:`RPCChannel`, the default: every ``remote_pull``
  issues one wire request per owning partition it touches.
* ``"batched"`` — :class:`BatchedRPCChannel`, the DistDGL-style batched KV
  client: all trainers on a machine share one per-step
  :class:`CoalescingWindow`; within a window duplicate ids are merged (served
  from the window cache without re-fetching) and pulls to an already-contacted
  owner ride the open wire request instead of opening a new one.

:class:`RPCStats` counts both views: ``requests``/``nodes_fetched`` are the
**wire** level (what actually crossed the network, after coalescing) while
``logical_requests``/``nodes_requested`` are the **logical** level (what the
sources asked for) — the split that keeps Fig. 11's RPC-reduction accounting
honest.  ``as_dict`` keeps the historical four-key schema (golden fixtures pin
it); ``as_extended_dict`` adds the logical counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.distributed.cost_model import BYTES_PER_FEATURE, CostModel
from repro.distributed.kvstore import KVStore
from repro.utils.registry import Registry
from repro.utils.validation import check_1d_int_array


@dataclass
class RPCStats:
    """Cumulative per-trainer RPC counters (wire level + logical level)."""

    requests: int = 0                # wire requests issued (per-owner groups)
    nodes_fetched: int = 0           # rows that moved over the wire
    bytes_fetched: int = 0
    simulated_time_s: float = 0.0
    logical_requests: int = 0        # non-empty remote_pull calls from sources
    nodes_requested: int = 0         # rows requested logically (pre-coalescing)

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "nodes_fetched": self.nodes_fetched,
            "bytes_fetched": self.bytes_fetched,
            "simulated_time_s": self.simulated_time_s,
        }

    def as_extended_dict(self) -> Dict[str, float]:
        out = self.as_dict()
        out["logical_requests"] = self.logical_requests
        out["nodes_requested"] = self.nodes_requested
        return out

    def merge(self, other: "RPCStats") -> "RPCStats":
        return RPCStats(
            requests=self.requests + other.requests,
            nodes_fetched=self.nodes_fetched + other.nodes_fetched,
            bytes_fetched=self.bytes_fetched + other.bytes_fetched,
            simulated_time_s=self.simulated_time_s + other.simulated_time_s,
            logical_requests=self.logical_requests + other.logical_requests,
            nodes_requested=self.nodes_requested + other.nodes_requested,
        )


class RPCChannel:
    """A trainer's handle for pulling remote features from partition servers.

    Parameters
    ----------
    servers:
        Mapping from partition id to that partition's :class:`KVStore`.
    local_part:
        The partition co-located with this trainer; pulls from it are memory
        copies, not RPCs (and raise if routed through :meth:`remote_pull`).
    cost_model:
        Used to convert transfer sizes into simulated seconds.
    """

    def __init__(
        self,
        servers: Dict[int, KVStore],
        local_part: int,
        cost_model: Optional[CostModel] = None,
    ):
        self.servers = servers
        self.local_part = int(local_part)
        self.cost_model = cost_model or CostModel.cpu()
        self.stats = RPCStats()

    # ------------------------------------------------------------------ #
    def local_pull(self, global_ids: np.ndarray) -> Tuple[np.ndarray, float]:
        """Copy locally owned feature rows; returns (rows, simulated_copy_time)."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        store = self.servers[self.local_part]
        rows = store.pull(global_ids, remote=False)
        copy_time = self.cost_model.time_copy(len(global_ids), store.feature_dim)
        return rows, copy_time

    def remote_pull(
        self, global_ids: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, float, RPCStats]:
        """Pull remotely owned rows, grouped per owning partition.

        Parameters
        ----------
        global_ids:
            Global node ids to fetch (must not be owned locally).
        owners:
            Owning partition id per node (same length as ``global_ids``).

        Returns
        -------
        (rows, simulated_time, delta_stats):
            ``rows`` aligns with ``global_ids``; ``simulated_time`` is the RPC
            wall time charged to the calling trainer; ``delta_stats`` is the
            increment recorded for this call.
        """
        global_ids, owners = self._validate_remote_pull(global_ids, owners)
        if len(global_ids) == 0:
            return self._empty_pull_result()

        dim = self.servers[self.local_part].feature_dim
        rows = np.zeros((len(global_ids), dim), dtype=np.float32)
        unique_owners = np.unique(owners)
        num_requests = 0
        for owner in unique_owners:
            mask = owners == owner
            rows[mask] = self._pull_from_owner(int(owner), global_ids[mask])
            num_requests += 1

        simulated = self.cost_model.time_rpc(len(global_ids), dim, num_requests=num_requests)
        delta = RPCStats(
            requests=num_requests,
            nodes_fetched=int(len(global_ids)),
            bytes_fetched=int(len(global_ids) * dim * BYTES_PER_FEATURE),
            simulated_time_s=simulated,
            logical_requests=1,
            nodes_requested=int(len(global_ids)),
        )
        self.stats = self.stats.merge(delta)
        return rows, simulated, delta

    def begin_step(self, step: int) -> None:
        """Mark the start of a pipeline step (no-op for per-call channels)."""

    def reset_stats(self) -> None:
        self.stats = RPCStats()

    # ------------------------------------------------------------------ #
    # Shared remote-pull plumbing (both channel implementations use these,
    # so validation and error behavior cannot drift between them).
    # ------------------------------------------------------------------ #
    def _validate_remote_pull(
        self, global_ids: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        owners = check_1d_int_array(owners, "owners")
        if len(global_ids) != len(owners):
            raise ValueError("global_ids and owners must align")
        if np.any(owners == self.local_part):
            raise ValueError("remote_pull received locally owned nodes; use local_pull")
        return global_ids, owners

    def _empty_pull_result(self) -> Tuple[np.ndarray, float, "RPCStats"]:
        dim = self.servers[self.local_part].feature_dim
        return np.zeros((0, dim), dtype=np.float32), 0.0, RPCStats()

    def _pull_from_owner(self, owner: int, ids: np.ndarray) -> np.ndarray:
        server = self.servers.get(owner)
        if server is None:
            raise KeyError(f"no server registered for partition {owner}")
        return server.pull(ids, remote=True)


class CoalescingWindow:
    """Per-machine, per-step cache of remote rows and contacted owners.

    One window is shared by every :class:`BatchedRPCChannel` on a machine.
    The training engines open a new window once per global pipeline step via
    :meth:`BatchedRPCChannel.begin_step`; until the first ``begin_step`` the
    window is inactive and the owning channels fall back to per-call
    semantics (so one-time initialization pulls are accounted unchanged).
    """

    def __init__(self) -> None:
        self._step: Optional[int] = None
        self._ids = np.zeros(0, dtype=np.int64)
        self._rows: Optional[np.ndarray] = None
        self._owners: Set[int] = set()

    @property
    def active(self) -> bool:
        return self._step is not None

    def begin_step(self, step: int) -> None:
        """Open the window for *step*, discarding the previous step's state."""
        if step != self._step:
            self._step = step
            self._ids = np.zeros(0, dtype=np.int64)
            self._rows = None
            self._owners = set()

    def deactivate(self) -> None:
        """Return to the inactive (per-call) state; used by cluster reset."""
        self._step = None
        self._ids = np.zeros(0, dtype=np.int64)
        self._rows = None
        self._owners = set()

    # ------------------------------------------------------------------ #
    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        if len(self._ids) == 0:
            return np.zeros(len(global_ids), dtype=bool)
        idx = np.minimum(np.searchsorted(self._ids, global_ids), len(self._ids) - 1)
        return self._ids[idx] == global_ids

    def owner_contacted(self, owner: int) -> bool:
        return owner in self._owners

    def note_owner(self, owner: int) -> None:
        self._owners.add(owner)

    def add(self, global_ids: np.ndarray, rows: np.ndarray) -> None:
        """Insert newly fetched rows (sorted-unique, previously absent) into the cache."""
        if len(global_ids) == 0:
            return
        if self._rows is None:
            self._ids = global_ids.copy()
            self._rows = rows.copy()
            return
        # Both sides are sorted, so a positional merge insert keeps the cache
        # ordered in O(cache + new) without re-sorting it on every pull.  The
        # window resets every step, and a step sees at most a couple of pulls
        # per trainer, so rebuilding the arrays per add stays cheap.
        insert_at = np.searchsorted(self._ids, global_ids)
        self._ids = np.insert(self._ids, insert_at, global_ids)
        self._rows = np.insert(self._rows, insert_at, rows, axis=0)

    def rows_for(self, global_ids: np.ndarray) -> np.ndarray:
        """Rows aligned with *global_ids*; every id must already be cached."""
        idx = np.searchsorted(self._ids, global_ids)
        bad = (idx >= len(self._ids)) | (
            self._ids[np.minimum(idx, max(0, len(self._ids) - 1))] != global_ids
        )
        if np.any(bad):
            missing = global_ids[bad][:5]
            raise KeyError(f"window cache is missing nodes {missing.tolist()}")
        return self._rows[idx]


class BatchedRPCChannel(RPCChannel):
    """Owner-coalescing RPC channel (DistDGL-style batched KV access).

    Within one step window (shared per machine), ``remote_pull``:

    * serves ids already fetched this window from the window cache — no wire
      traffic, no bytes, no time;
    * merges duplicate ids within the call before fetching;
    * groups the remaining ids per owner and only counts a **wire request**
      for owners not yet contacted this window — later pulls to the same
      owner ride the open request (latency charged once per owner per step,
      bandwidth charged for every row that actually moves).

    The rows returned are identical to :class:`RPCChannel`'s, so training
    numerics are unchanged; only the wire accounting and simulated time
    differ.  Logical counters record what the sources asked for.
    """

    def __init__(
        self,
        servers: Dict[int, KVStore],
        local_part: int,
        cost_model: Optional[CostModel] = None,
        window: Optional[CoalescingWindow] = None,
    ):
        super().__init__(servers, local_part, cost_model=cost_model)
        self.window = window if window is not None else CoalescingWindow()

    def begin_step(self, step: int) -> None:
        self.window.begin_step(step)

    def remote_pull(
        self, global_ids: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, float, RPCStats]:
        if not self.window.active:
            # Outside a step window (e.g. prefetcher initialization): behave
            # exactly like the per-call channel.
            return super().remote_pull(global_ids, owners)
        global_ids, owners = self._validate_remote_pull(global_ids, owners)
        if len(global_ids) == 0:
            return self._empty_pull_result()

        dim = self.servers[self.local_part].feature_dim
        window = self.window
        new_mask = ~window.contains(global_ids)
        num_new = 0
        opened = 0
        if np.any(new_mask):
            unique_new, first = np.unique(global_ids[new_mask], return_index=True)
            unique_owners = owners[new_mask][first]
            fetched = np.zeros((len(unique_new), dim), dtype=np.float32)
            for owner in np.unique(unique_owners):
                mask = unique_owners == owner
                fetched[mask] = self._pull_from_owner(int(owner), unique_new[mask])
                if not window.owner_contacted(int(owner)):
                    window.note_owner(int(owner))
                    opened += 1
            window.add(unique_new, fetched)
            num_new = int(len(unique_new))

        simulated = self.cost_model.time_rpc_batched(num_new, dim, opened)
        rows = window.rows_for(global_ids)
        delta = RPCStats(
            requests=opened,
            nodes_fetched=num_new,
            bytes_fetched=int(num_new * dim * BYTES_PER_FEATURE),
            simulated_time_s=simulated,
            logical_requests=1,
            nodes_requested=int(len(global_ids)),
        )
        self.stats = self.stats.merge(delta)
        return rows, simulated, delta


# --------------------------------------------------------------------------- #
# Registry: channels constructible by name from ClusterConfig / CLI
# --------------------------------------------------------------------------- #
RPC_CHANNELS = Registry("rpc channel")


@RPC_CHANNELS.register("per-call", aliases=("plain", "unbatched"))
def _build_per_call(
    servers: Dict[int, KVStore],
    local_part: int,
    cost_model: Optional[CostModel] = None,
    window: Optional[CoalescingWindow] = None,
) -> RPCChannel:
    return RPCChannel(servers, local_part, cost_model=cost_model)


@RPC_CHANNELS.register("batched", aliases=("coalesced",))
def _build_batched(
    servers: Dict[int, KVStore],
    local_part: int,
    cost_model: Optional[CostModel] = None,
    window: Optional[CoalescingWindow] = None,
) -> BatchedRPCChannel:
    return BatchedRPCChannel(servers, local_part, cost_model=cost_model, window=window)


def build_rpc_channel(
    name: str,
    servers: Dict[int, KVStore],
    local_part: int,
    cost_model: Optional[CostModel] = None,
    window: Optional[CoalescingWindow] = None,
) -> RPCChannel:
    """Build a registered RPC channel by name (see :data:`RPC_CHANNELS`)."""
    return RPC_CHANNELS.build(
        name, servers, local_part, cost_model=cost_model, window=window
    )


def merge_rpc_stats(stats: List[RPCStats]) -> RPCStats:
    """Sum a sequence of :class:`RPCStats` in order (left fold of ``merge``)."""
    total = RPCStats()
    for entry in stats:
        total = total.merge(entry)
    return total


def aggregate_rpc_stats(channels: List[RPCChannel]) -> RPCStats:
    """Sum RPC statistics across all trainers' channels."""
    return merge_rpc_stats([channel.stats for channel in channels])
