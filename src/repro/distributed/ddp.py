"""Distributed data-parallel (DDP) gradient synchronization.

The simulated trainers each hold a full replica of the GNN model and train on
their own minibatches; after every backward pass their gradients are averaged
(the synchronous allreduce PyTorch DDP performs) and every replica applies the
same update.  Because the trainers run sequentially inside one process, the
"allreduce" is an exact arithmetic mean — numerically equivalent to what NCCL
or Gloo would produce — and its *cost* is charged to each trainer's simulated
clock via the cost model's ring-allreduce estimate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.distributed.cost_model import CostModel


GradDict = Dict[str, np.ndarray]


def allreduce_gradients(per_trainer_grads: Sequence[GradDict]) -> GradDict:
    """Average gradients across trainers (synchronous DDP).

    All trainers must provide the same parameter names and shapes; trainers
    that processed an empty minibatch may pass an empty dict and are excluded
    from the average (mirroring DDP's join semantics for uneven inputs).
    When *every* trainer joins with an empty dict the round is a no-op and an
    empty dict is returned — callers must skip the optimizer step for that
    round (see :func:`repro.training.engine.apply_averaged_gradients`) rather
    than divide by zero contributors or hit a parameter/gradient key mismatch.
    """
    contributing = [g for g in per_trainer_grads if g]
    if not contributing:
        return {}
    names = set(contributing[0].keys())
    for g in contributing[1:]:
        if set(g.keys()) != names:
            raise ValueError("all trainers must report gradients for the same parameters")
    averaged: GradDict = {}
    for name in names:
        stacked = np.stack([g[name] for g in contributing], axis=0)
        averaged[name] = stacked.mean(axis=0)
    return averaged


def gradient_num_elements(grads: GradDict) -> int:
    """Total number of gradient elements (drives allreduce payload size)."""
    return int(sum(g.size for g in grads.values()))


def allreduce_time(cost_model: CostModel, num_params: int, world_size: int) -> float:
    """Simulated allreduce time for the given payload and world size."""
    return cost_model.time_allreduce(num_params, world_size)


def check_replicas_consistent(param_dicts: List[GradDict], atol: float = 1e-5) -> bool:
    """Verify that all model replicas hold (numerically) identical parameters.

    Synchronous DDP guarantees this invariant after every step; the integration
    tests assert it to make sure the simulated trainers do not drift.
    """
    if len(param_dicts) <= 1:
        return True
    reference = param_dicts[0]
    for other in param_dicts[1:]:
        if set(other.keys()) != set(reference.keys()):
            return False
        for name, value in reference.items():
            if not np.allclose(value, other[name], atol=atol):
                return False
    return True
