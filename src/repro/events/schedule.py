"""Deterministic stress schedules for the event-driven engine.

Every stress input — trainer failures, RPC congestion, elastic membership —
is expressed as a frozen *spec* dataclass implementing the
:class:`ScheduleSpec` protocol, so the engine consumes them all through one
seam:

* ``validate()`` re-runs the eager ``__post_init__`` checks (useful after a
  pickle round-trip or a hand-constructed spec);
* ``describe()`` renders the short human label used by the scenario catalog
  (``repro scenarios --markdown``) and ``ClusterScenario.execution``;
* ``materialize(world_size, seed)`` expands the spec into the runtime object
  the engine actually consults — a per-rank plan, a time profile, or an event
  schedule.  Materialization is a pure function of ``(spec, world_size,
  seed)``, so the stress behaviour of a run replays **bit-identically**: the
  same seed produces the same fail/recover/join/leave sequence and the same
  latency multipliers at the same simulated instants (pinned by
  ``tests/test_async_engine.py`` and ``tests/test_elastic.py``).

The shipped specs (also listed in :data:`SCHEDULE_SPECS`):

* :class:`FailureSpec` / :class:`FailureSchedule` — transient trainer
  outages.  Failures are keyed by *lifetime step index* rather than absolute
  simulated time, so the same spec stresses a 2-epoch smoke run and a
  100-epoch workload alike; the downtime is expressed as a multiple of the
  failing step's critical-path duration, so it scales with the workload
  automatically.  A failed trainer finishes its in-flight step (and its
  gradient still counts), then goes dark for the downtime — peers feel it as
  barrier wait or a staleness stall, depending on the sync policy.
* :class:`CongestionSpec` — a periodic square-wave congestion profile for the
  RPC fabric: during a burst the per-request latency is multiplied and the
  effective bandwidth divided.  Fed through
  :class:`~repro.distributed.cost_model.CongestedCostModel`, which reads the
  trainer's simulated clock at fetch time.
* :class:`ElasticSpec` / :class:`ElasticSchedule` — dynamic cluster
  membership.  Ranks can start held out (``initially_inactive``), join at a
  simulated instant, or leave; each membership change triggers a rebalance
  event in the async engine that re-splits seed ownership on the affected
  machine and migrates partition rows through the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive


class ScheduleSpec:
    """Protocol base for seeded stress-schedule specs.

    Subclasses are frozen dataclasses with eager ``__post_init__`` validation;
    the base adds the uniform seam the engine and the catalog consume:
    ``kind`` (registry key), ``validate()``, ``describe()``, and
    ``materialize(world_size, seed)``.
    """

    kind = "schedule"

    def validate(self) -> None:
        """Re-run the eager construction-time checks (no-op when valid)."""
        post_init = getattr(self, "__post_init__", None)
        if post_init is not None:
            post_init()

    def describe(self) -> str:
        """Short human label for catalogs and ``ClusterScenario.execution``."""
        raise NotImplementedError

    def materialize(self, world_size: int, seed: int):
        """Expand into the runtime object the engine consults during a run."""
        raise NotImplementedError


@dataclass(frozen=True)
class FailureSpec(ScheduleSpec):
    """Parameters of the seeded transient-failure process (per trainer).

    ``rate`` is the per-step failure probability; ``min_downtime_steps`` /
    ``max_downtime_steps`` bound the outage length in multiples of the failing
    step's critical-path time; ``horizon_steps`` is how many lifetime steps of
    schedule are drawn per trainer (steps beyond the horizon never fail).
    """

    kind = "failures"

    rate: float = 0.05
    min_downtime_steps: float = 3.0
    max_downtime_steps: float = 10.0
    horizon_steps: int = 512

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {self.rate!r}")
        check_positive(self.min_downtime_steps, "min_downtime_steps")
        check_positive(self.max_downtime_steps, "max_downtime_steps")
        if self.max_downtime_steps < self.min_downtime_steps:
            raise ValueError("max_downtime_steps must be >= min_downtime_steps")
        check_positive(self.horizon_steps, "horizon_steps")

    def describe(self) -> str:
        return f"failures(rate={self.rate:g})"

    def materialize(self, world_size: int, seed: int) -> "FailureSchedule":
        return FailureSchedule(self, world_size, seed)


class FailureSchedule:
    """The materialized per-rank failure plan: ``{step_index: downtime_factor}``.

    Built once per run from ``(spec, world_size, seed)``; the draw uses one
    child RNG per rank (salted with the rank), so the schedule of rank *r*
    does not depend on the world size seen by other ranks.
    """

    def __init__(self, spec: FailureSpec, world_size: int, seed: int):
        self.spec = spec
        self.world_size = int(world_size)
        self.seed = int(seed)
        self._plan: Dict[int, Dict[int, float]] = {}
        for rank in range(self.world_size):
            rng = np.random.default_rng(derive_seed(seed, 761, rank))
            fails = rng.random(spec.horizon_steps) < spec.rate
            factors = rng.uniform(
                spec.min_downtime_steps, spec.max_downtime_steps, spec.horizon_steps
            )
            self._plan[rank] = {
                int(step): float(factors[step]) for step in np.nonzero(fails)[0]
            }

    def downtime_factor(self, rank: int, step: int) -> Optional[float]:
        """Downtime multiple if *rank* fails after lifetime *step*, else ``None``."""
        return self._plan.get(rank, {}).get(step)

    def total_planned_failures(self) -> int:
        return sum(len(plan) for plan in self._plan.values())


@dataclass(frozen=True)
class CongestionSpec(ScheduleSpec):
    """A periodic square-wave congestion profile on the RPC fabric.

    For simulated time *t*, the link is congested when
    ``((t + phase_s) mod period_s) < duty * period_s``; while congested,
    RPC latency is multiplied by ``latency_multiplier`` and bandwidth divided
    by ``bandwidth_divisor``.  Defaults are sized for smoke-scale runs (step
    times in the 0.1–1 ms range), giving several bursts per epoch.
    """

    kind = "congestion"

    period_s: float = 2.0e-3
    duty: float = 0.5
    latency_multiplier: float = 10.0
    bandwidth_divisor: float = 4.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.period_s, "period_s")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty!r}")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if self.bandwidth_divisor < 1.0:
            raise ValueError("bandwidth_divisor must be >= 1")

    def congested_at(self, time_s: float) -> bool:
        return ((time_s + self.phase_s) % self.period_s) < self.duty * self.period_s

    def factors_at(self, time_s: float) -> Tuple[float, float]:
        """``(latency_multiplier, bandwidth_divisor)`` in effect at *time_s*."""
        if self.congested_at(time_s):
            return (self.latency_multiplier, self.bandwidth_divisor)
        return (1.0, 1.0)

    def describe(self) -> str:
        return f"congestion(x{self.latency_multiplier:g}, {self.duty:.0%} duty)"

    def materialize(self, world_size: int, seed: int) -> "CongestionSpec":
        """The spec is its own runtime profile (pure function of time)."""
        return self


_CACHE_POLICIES = ("invalidate", "warm")


@dataclass(frozen=True)
class ElasticSpec(ScheduleSpec):
    """A seeded join/leave schedule for elastic cluster membership.

    ``initially_inactive`` ranks exist in the cluster topology but hold no
    seeds and run no steps until they join.  ``joins`` / ``leaves`` are
    ``(rank, time_s)`` pairs in simulated seconds; an optional uniform
    ``jitter_s`` perturbs each instant deterministically (salted per event).
    ``cache_policy`` picks what happens to a migrated partition's shared
    cache tier: ``"invalidate"`` drops it cold on the new owner,
    ``"warm"`` ships the cached rows along (charging their bytes too).

    Membership changes take effect on trainer scheduling at the next epoch
    boundary for joins (the joining rank participates from the following
    ``on_epoch_start``), and immediately for leaves (the leaving rank is
    drained after its in-flight step, if any).
    """

    kind = "elastic"

    initially_inactive: Tuple[int, ...] = ()
    joins: Tuple[Tuple[int, float], ...] = ()
    leaves: Tuple[Tuple[int, float], ...] = ()
    jitter_s: float = 0.0
    cache_policy: str = "invalidate"

    def __post_init__(self) -> None:
        held = tuple(int(r) for r in self.initially_inactive)
        joins = tuple((int(r), float(t)) for r, t in self.joins)
        leaves = tuple((int(r), float(t)) for r, t in self.leaves)
        object.__setattr__(self, "initially_inactive", held)
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "leaves", leaves)
        object.__setattr__(self, "jitter_s", float(self.jitter_s))
        if len(set(held)) != len(held):
            raise ValueError(f"duplicate ranks in initially_inactive: {held!r}")
        for rank in held:
            if rank < 0:
                raise ValueError(f"initially_inactive ranks must be >= 0, got {rank}")
        for label, events in (("joins", joins), ("leaves", leaves)):
            for rank, time_s in events:
                if rank < 0:
                    raise ValueError(f"{label} ranks must be >= 0, got {rank}")
                if time_s < 0.0:
                    raise ValueError(f"{label} times must be >= 0, got {time_s!r}")
        if self.jitter_s < 0.0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s!r}")
        if self.cache_policy not in _CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be one of {_CACHE_POLICIES}, "
                f"got {self.cache_policy!r}"
            )

    @property
    def is_empty(self) -> bool:
        """True when the spec prescribes no membership change at all."""
        return not (self.initially_inactive or self.joins or self.leaves)

    def describe(self) -> str:
        return (
            f"elastic(hold {len(self.initially_inactive)}, "
            f"+{len(self.joins)}, -{len(self.leaves)})"
        )

    def materialize(self, world_size: int, seed: int) -> "ElasticSchedule":
        return ElasticSchedule(self, world_size, seed)


class ElasticSchedule:
    """The materialized membership timeline: jittered, sorted, validated.

    ``events`` is a list of ``(time_s, kind, rank)`` with kind ``"join"`` or
    ``"leave"``, sorted by ``(time_s, rank, kind)``; ``initially_inactive``
    is the frozen set of ranks held out at construction.  Jitter draws come
    from one child RNG (salt 883) in spec order — joins first, then leaves —
    so the timeline is a pure function of ``(spec, seed)``.
    """

    def __init__(self, spec: ElasticSpec, world_size: int, seed: int):
        self.spec = spec
        self.world_size = int(world_size)
        self.seed = int(seed)
        for rank in spec.initially_inactive:
            if rank >= self.world_size:
                raise ValueError(
                    f"initially_inactive rank {rank} out of range for "
                    f"world size {self.world_size}"
                )
        if len(set(spec.initially_inactive)) >= self.world_size:
            raise ValueError("at least one rank must start active")
        rng = np.random.default_rng(derive_seed(seed, 883))
        events: List[Tuple[float, str, int]] = []
        for label, pairs in (("join", spec.joins), ("leave", spec.leaves)):
            for rank, time_s in pairs:
                if rank >= self.world_size:
                    raise ValueError(
                        f"{label} rank {rank} out of range for "
                        f"world size {self.world_size}"
                    )
                jitter = float(rng.uniform(0.0, spec.jitter_s)) if spec.jitter_s else 0.0
                events.append((time_s + jitter, label, rank))
        events.sort(key=lambda ev: (ev[0], ev[2], ev[1]))
        self.initially_inactive = frozenset(spec.initially_inactive)
        self.events = events
        self._check_alternation()

    def _check_alternation(self) -> None:
        """Joins must hit inactive ranks and leaves active ones, in time order."""
        active = {
            rank
            for rank in range(self.world_size)
            if rank not in self.initially_inactive
        }
        for time_s, kind, rank in self.events:
            if kind == "join":
                if rank in active:
                    raise ValueError(
                        f"join at t={time_s:g} targets rank {rank}, "
                        "which is already active"
                    )
                active.add(rank)
            else:
                if rank not in active:
                    raise ValueError(
                        f"leave at t={time_s:g} targets rank {rank}, "
                        "which is already inactive"
                    )
                active.discard(rank)

    def total_events(self) -> int:
        return len(self.events)


#: Registry of schedule-spec kinds, in catalog display order.
SCHEDULE_SPECS: Dict[str, type] = {
    FailureSpec.kind: FailureSpec,
    CongestionSpec.kind: CongestionSpec,
    ElasticSpec.kind: ElasticSpec,
}
