"""Deterministic fault and congestion schedules for the event-driven engine.

Both schedules are pure functions of a seed and a handful of spec fields, so
the failure/congestion behaviour of a run replays **bit-identically**: the
same seed produces the same fail/recover event sequence and the same latency
multipliers at the same simulated instants (pinned by
``tests/test_async_engine.py``).

* :class:`FailureSpec` / :class:`FailureSchedule` — transient trainer
  outages.  Failures are keyed by *lifetime step index* rather than absolute
  simulated time, so the same spec stresses a 2-epoch smoke run and a
  100-epoch workload alike; the downtime is expressed as a multiple of the
  failing step's critical-path duration, so it scales with the workload
  automatically.  A failed trainer finishes its in-flight step (and its
  gradient still counts), then goes dark for the downtime — peers feel it as
  barrier wait or a staleness stall, depending on the sync policy.
* :class:`CongestionSpec` — a periodic square-wave congestion profile for the
  RPC fabric: during a burst the per-request latency is multiplied and the
  effective bandwidth divided.  Fed through
  :class:`~repro.distributed.cost_model.CongestedCostModel`, which reads the
  trainer's simulated clock at fetch time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FailureSpec:
    """Parameters of the seeded transient-failure process (per trainer).

    ``rate`` is the per-step failure probability; ``min_downtime_steps`` /
    ``max_downtime_steps`` bound the outage length in multiples of the failing
    step's critical-path time; ``horizon_steps`` is how many lifetime steps of
    schedule are drawn per trainer (steps beyond the horizon never fail).
    """

    rate: float = 0.05
    min_downtime_steps: float = 3.0
    max_downtime_steps: float = 10.0
    horizon_steps: int = 512

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {self.rate!r}")
        check_positive(self.min_downtime_steps, "min_downtime_steps")
        check_positive(self.max_downtime_steps, "max_downtime_steps")
        if self.max_downtime_steps < self.min_downtime_steps:
            raise ValueError("max_downtime_steps must be >= min_downtime_steps")
        check_positive(self.horizon_steps, "horizon_steps")


class FailureSchedule:
    """The materialized per-rank failure plan: ``{step_index: downtime_factor}``.

    Built once per run from ``(spec, world_size, seed)``; the draw uses one
    child RNG per rank (salted with the rank), so the schedule of rank *r*
    does not depend on the world size seen by other ranks.
    """

    def __init__(self, spec: FailureSpec, world_size: int, seed: int):
        self.spec = spec
        self.world_size = int(world_size)
        self.seed = int(seed)
        self._plan: Dict[int, Dict[int, float]] = {}
        for rank in range(self.world_size):
            rng = np.random.default_rng(derive_seed(seed, 761, rank))
            fails = rng.random(spec.horizon_steps) < spec.rate
            factors = rng.uniform(
                spec.min_downtime_steps, spec.max_downtime_steps, spec.horizon_steps
            )
            self._plan[rank] = {
                int(step): float(factors[step]) for step in np.nonzero(fails)[0]
            }

    def downtime_factor(self, rank: int, step: int) -> Optional[float]:
        """Downtime multiple if *rank* fails after lifetime *step*, else ``None``."""
        return self._plan.get(rank, {}).get(step)

    def total_planned_failures(self) -> int:
        return sum(len(plan) for plan in self._plan.values())


@dataclass(frozen=True)
class CongestionSpec:
    """A periodic square-wave congestion profile on the RPC fabric.

    For simulated time *t*, the link is congested when
    ``((t + phase_s) mod period_s) < duty * period_s``; while congested,
    RPC latency is multiplied by ``latency_multiplier`` and bandwidth divided
    by ``bandwidth_divisor``.  Defaults are sized for smoke-scale runs (step
    times in the 0.1–1 ms range), giving several bursts per epoch.
    """

    period_s: float = 2.0e-3
    duty: float = 0.5
    latency_multiplier: float = 10.0
    bandwidth_divisor: float = 4.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.period_s, "period_s")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty!r}")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if self.bandwidth_divisor < 1.0:
            raise ValueError("bandwidth_divisor must be >= 1")

    def congested_at(self, time_s: float) -> bool:
        return ((time_s + self.phase_s) % self.period_s) < self.duty * self.period_s

    def factors_at(self, time_s: float) -> Tuple[float, float]:
        """``(latency_multiplier, bandwidth_divisor)`` in effect at *time_s*."""
        if self.congested_at(time_s):
            return (self.latency_multiplier, self.bandwidth_divisor)
        return (1.0, 1.0)
