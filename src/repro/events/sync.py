"""Pluggable gradient-synchronization policies for the event-driven engine.

The lockstep :class:`~repro.training.cluster_engine.ClusterEngine` hard-codes
one synchronization scheme: every trainer computes one minibatch, then all of
them meet at an allreduce barrier.  The event-driven
:class:`~repro.training.async_engine.AsyncClusterEngine` instead delegates
*when gradients meet the model* to a :class:`SyncPolicy` selected by name
from :data:`SYNC_POLICIES`:

* ``allreduce-barrier`` — bulk-synchronous rounds.  Reproduces the lockstep
  engine **bit-identically** (losses, clocks, barrier waits, RPC counters) on
  the same workload; the float operations happen in exactly the same order.
* ``bounded-staleness`` — stale-synchronous parallel (SSP): a trainer may run
  up to ``staleness`` rounds ahead of the slowest incomplete round.  Round
  gradients are averaged and applied when the round's last contributor
  finishes; trainers already ahead computed on staler parameters.  The
  gradient push/pull is modelled as asynchronous communication hidden behind
  the next step's compute (recorded per trainer as ``hidden_sync_time_s``),
  which is what takes the collective off the critical path.
* ``local-sgd`` — each trainer owns a full parameter replica and applies its
  *own* gradients locally; every ``sync_period`` steps all trainers meet at a
  barrier where replicas are averaged (one allreduce charged), then diverge
  again.

Policies are engine components, not arm's-length plugins: they are handed a
:class:`SyncContext` giving them the trainers' clocks, the shared model and
optimizer, and the engine callbacks (``schedule_ready``, ``record_round``,
``record_step``).  The contract is documented on :class:`SyncPolicy`; new
policies register with ``@SYNC_POLICIES.register("name")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.distributed.ddp import allreduce_gradients
from repro.utils.registry import Registry

SYNC_POLICIES = Registry("sync policy")


@dataclass
class StepContribution:
    """One trainer's finished minibatch, as handed to the sync policy."""

    rank: int
    loss: float
    n_correct: int
    n_seen: int
    grads: Optional[Dict[str, np.ndarray]] = None


@dataclass
class SyncContext:
    """Engine state and callbacks a :class:`SyncPolicy` operates on.

    ``barrier_waits`` accumulates each trainer's simulated seconds spent
    waiting on synchronization (barrier or staleness stall) — the same ledger
    the lockstep engine keeps.  ``sync_extras`` is a per-rank scratch dict the
    policy can drop counters into; non-empty dicts surface as
    ``TrainerRunStats.sync_stats``.
    """

    trainers: List[object]
    model: object
    optimizer: object
    cost_model: object
    num_params: int
    accumulators: List[object]
    barrier_waits: List[float]
    sync_extras: List[Dict[str, float]]
    train_config: object
    # Engine callbacks:
    schedule_ready: Callable[[int], None]
    record_round: Callable[[List[StepContribution]], None]
    record_step: Callable[[StepContribution], None]
    # Host-side immediate execution of one trainer's next step (used by
    # policies that must control the execution *order* of a round, e.g. the
    # barrier policy's rank-ordered rounds).  Only meaningful from within a
    # can_start/on_trainer_exhausted callback.
    start_step: Callable[[int], None] = None
    # Batched variant: execute a rank-ordered cohort of steps in one call.
    # Serially equivalent to calling start_step per rank, but it is the
    # execution backend's batch boundary — a process-pool backend computes the
    # cohort in parallel workers and merges outcomes in rank order.  Policies
    # releasing whole cohorts should prefer it; it falls back to per-rank
    # start_step when the engine does not provide it.
    start_steps: Callable[[List[int]], None] = None
    # Gradient-application seam: when the engine sets this, averaged gradients
    # are applied through the execution backend (which also forwards them to
    # worker-process model replicas); None applies directly to ctx.model.
    apply_update: Callable[[Dict[str, np.ndarray]], bool] = None

    @property
    def world_size(self) -> int:
        return len(self.trainers)

    def add_extra(self, rank: int, key: str, value: float) -> None:
        extras = self.sync_extras[rank]
        extras[key] = extras.get(key, 0.0) + value

    def stall_until(self, rank: int, timestamp: float) -> None:
        """Advance *rank*'s clock to *timestamp*, booking the gap as sync wait."""
        clock = self.trainers[rank].clock
        wait = timestamp - clock.time
        if wait > 0:
            self.barrier_waits[rank] += wait
            clock.advance(wait, "stall")

    def apply_averaged(self, averaged: Dict[str, np.ndarray]) -> bool:
        """Apply an averaged gradient through the backend seam (or directly)."""
        if self.apply_update is not None:
            return self.apply_update(averaged)
        return apply_averaged_gradients(self.optimizer, self.model, averaged)


def apply_averaged_gradients(optimizer, model, averaged) -> bool:
    """Import indirection point (resolved lazily to avoid a training import cycle)."""
    from repro.training.engine import apply_averaged_gradients as _apply

    return _apply(optimizer, model, averaged)


class SyncPolicy:
    """Base class spelling out the engine/policy contract.

    Lifecycle per run: :meth:`bind` once, then per epoch :meth:`on_epoch_start`
    followed by event callbacks, then :meth:`on_run_end`.  The engine calls:

    * :meth:`can_start` when a trainer's ``step-ready`` event pops — return
      ``False`` to hold the trainer (the policy must remember it and later
      :meth:`SyncContext.stall_until` + ``schedule_ready`` it);
    * :meth:`before_step` / :meth:`process_step` around the host-side compute
      (replica-owning policies load/update their replica here);
    * :meth:`on_step_done` when the step's completion event pops;
    * :meth:`on_trainer_exhausted` when a trainer's epoch iterator ends (or
      the per-epoch step cap refuses to schedule it again, or an elastic
      leave detaches it mid-epoch).

    ``active_ranks`` at :meth:`on_epoch_start` is the epoch's membership
    roster — under elastic schedules it can be any subset of the world, and
    every policy must complete the epoch with contributions from exactly
    that roster (joined ranks appear in the next epoch's roster).

    Releasing a trainer is always the policy's job: every contribution must
    eventually be followed by a ``schedule_ready`` (or exhaustion), otherwise
    the event loop drains with trainers stranded and the engine raises.
    """

    name = "sync-policy"
    owns_replicas = False

    def bind(self, ctx: SyncContext) -> None:
        self.ctx = ctx

    def on_epoch_start(self, active_ranks: List[int]) -> None:  # pragma: no cover
        raise NotImplementedError

    def can_start(self, rank: int) -> bool:
        return True

    def coalescing_round(self, rank: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def before_step(self, rank: int) -> None:
        """Hook before the trainer's forward pass (replica policies load here)."""

    def process_step(self, rank: int, grads: Dict[str, np.ndarray]) -> Optional[dict]:
        """Hook right after gradients are computed; returns the grads to carry
        in the contribution (``None`` when the policy consumed them locally)."""
        return grads

    def on_step_done(self, contribution: StepContribution, now: float) -> None:
        raise NotImplementedError  # pragma: no cover

    def on_trainer_exhausted(self, rank: int, now: float) -> None:
        raise NotImplementedError  # pragma: no cover

    def on_epoch_end(self) -> None:
        """Hook after an epoch's event queue drains (round bookkeeping rollover)."""

    def on_run_end(self) -> None:
        """Final synchronization hook (replica policies average here)."""

    def describe(self) -> str:
        return self.name


# --------------------------------------------------------------------------- #
# allreduce-barrier: bulk-synchronous rounds, bit-identical to the lockstep
# engine's loop (same float operations in the same order).
# --------------------------------------------------------------------------- #
@SYNC_POLICIES.register("allreduce-barrier", aliases=("barrier", "bsp"))
class AllReduceBarrierPolicy(SyncPolicy):
    """Every round ends at a global allreduce barrier (the paper's DDP model).

    A round *begins* in rank order too: ready trainers are buffered until the
    whole round's cohort has arrived, then executed via
    :attr:`SyncContext.start_step` in ascending rank.  Event timestamps only
    order execution — every compute charge still lands on the owning
    trainer's own clock — so this changes no simulated time, but it pins the
    host-side execution order to the lockstep engine's, which is what keeps
    shared-state channels (the batched RPC coalescing window) bit-identical
    between the two engines, not just the default per-call channel.
    """

    name = "allreduce-barrier"

    def __init__(self) -> None:
        self._round = 0  # monotone across epochs, mirrors lockstep global_step
        self._expected: set = set()
        self._ready: set = set()
        self._contrib: Dict[int, StepContribution] = {}

    def on_epoch_start(self, active_ranks: List[int]) -> None:
        assert not self._contrib, "round in flight across an epoch boundary"
        self._expected = set(active_ranks)
        self._ready = set()

    def coalescing_round(self, rank: int) -> int:
        return self._round

    def can_start(self, rank: int) -> bool:
        # Buffer until the round's whole cohort is ready, then run it in rank
        # order ourselves; the engine must never start a step directly.
        self._ready.add(rank)
        self._maybe_release()
        return False

    def on_step_done(self, contribution: StepContribution, now: float) -> None:
        self._contrib[contribution.rank] = contribution
        self._maybe_complete()

    def on_trainer_exhausted(self, rank: int, now: float) -> None:
        self._expected.discard(rank)
        self._ready.discard(rank)
        self._maybe_release()
        self._maybe_complete()

    def _maybe_release(self) -> None:
        if not self._expected or not self._ready.issuperset(self._expected):
            return
        ranks = sorted(self._ready)
        self._ready = set()
        # The whole round's cohort releases at once — the natural merge point
        # for parallel execution backends (outcomes still land in rank order).
        if self.ctx.start_steps is not None:
            self.ctx.start_steps(ranks)
        else:
            for rank in ranks:
                self.ctx.start_step(rank)

    # ------------------------------------------------------------------ #
    def _maybe_complete(self) -> None:
        if not self._contrib or not self._expected.issubset(self._contrib):
            return
        ctx = self.ctx
        ranks = sorted(self._contrib)
        contributions = [self._contrib[r] for r in ranks]
        ctx.record_round(contributions)
        # Ordering below replicates ClusterEngine._allreduce_barrier exactly:
        # allreduce charged to participants, then *every* trainer (active or
        # not) is held at the global max — that is what keeps the two engines
        # bit-identical on the golden workload.
        averaged = allreduce_gradients([c.grads for c in contributions])
        allreduce_t = ctx.cost_model.time_allreduce(ctx.num_params, ctx.world_size)
        for r in ranks:
            ctx.trainers[r].clock.advance(allreduce_t, "allreduce")
            ctx.accumulators[r].totals["allreduce"] += allreduce_t
        latest = max(t.clock.time for t in ctx.trainers)
        for i, trainer in enumerate(ctx.trainers):
            wait = latest - trainer.clock.time
            if wait > 0:
                ctx.barrier_waits[i] += wait
                trainer.clock.advance(wait, "stall")
        ctx.apply_averaged(averaged)
        self._round += 1
        self._contrib = {}
        for r in sorted(self._expected):
            ctx.schedule_ready(r)


# --------------------------------------------------------------------------- #
# bounded-staleness: stale-synchronous parallel rounds
# --------------------------------------------------------------------------- #
@SYNC_POLICIES.register("bounded-staleness", aliases=("ssp", "stale"))
class BoundedStalenessPolicy(SyncPolicy):
    """Trainers run up to ``staleness`` rounds ahead of the oldest open round.

    A round's averaged gradient is applied the moment its last contributor
    finishes; faster trainers that already started later rounds computed on
    stale parameters — the SSP trade.  The gradient exchange itself is an
    asynchronous push/pull overlapped with the next step's compute, so no
    collective lands on any trainer's critical path; the would-be cost is
    recorded per trainer as ``hidden_sync_time_s``.
    """

    name = "bounded-staleness"

    def __init__(self, staleness: int = 1) -> None:
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.staleness = int(staleness)
        self._round_offset = 0  # lifetime rounds completed before this epoch

    def on_epoch_start(self, active_ranks: List[int]) -> None:
        self._rr: Dict[int, int] = {r: 0 for r in active_ranks}
        self._exhausted_at: Dict[int, int] = {}
        self._received: Dict[int, Dict[int, StepContribution]] = {}
        self._oldest = 0
        self._waiting: set = set()

    def coalescing_round(self, rank: int) -> int:
        return self._round_offset + self._rr.get(rank, 0)

    def can_start(self, rank: int) -> bool:
        if self._rr[rank] - self._oldest > self.staleness:
            self._waiting.add(rank)
            return False
        return True

    def on_step_done(self, contribution: StepContribution, now: float) -> None:
        rank = contribution.rank
        r = self._rr[rank]
        self._received.setdefault(r, {})[rank] = contribution
        self._rr[rank] = r + 1
        self._advance_completion(now)
        # The trainer itself proceeds immediately; the staleness gate is
        # re-evaluated when its next step-ready pops.
        self.ctx.schedule_ready(rank)

    def on_trainer_exhausted(self, rank: int, now: float) -> None:
        self._exhausted_at[rank] = self._rr.get(rank, 0)
        self._waiting.discard(rank)
        self._advance_completion(now)

    # ------------------------------------------------------------------ #
    def _frontier(self) -> int:
        return max(self._rr.values(), default=0)

    def _round_complete(self, r: int) -> bool:
        for rank, rr in self._rr.items():
            if rr > r:
                continue
            if self._exhausted_at.get(rank, np.inf) <= r:
                continue
            return False
        return True

    def _advance_completion(self, now: float) -> None:
        ctx = self.ctx
        completed_any = False
        while self._oldest < self._frontier() and self._round_complete(self._oldest):
            contrib = self._received.pop(self._oldest, {})
            ranks = sorted(contrib)
            contributions = [contrib[r] for r in ranks]
            if contributions:
                ctx.record_round(contributions)
                averaged = allreduce_gradients([c.grads for c in contributions])
                ctx.apply_averaged(averaged)
                # Async push/pull: charged off the critical path.
                hidden = ctx.cost_model.time_allreduce(ctx.num_params, ctx.world_size)
                for r in ranks:
                    ctx.add_extra(r, "hidden_sync_time_s", hidden)
            self._oldest += 1
            completed_any = True
        if completed_any:
            for rank in sorted(self._waiting):
                if self._rr[rank] - self._oldest <= self.staleness:
                    self._waiting.discard(rank)
                    ctx.add_extra(rank, "staleness_wait_s",
                                  max(0.0, now - ctx.trainers[rank].clock.time))
                    ctx.stall_until(rank, now)
                    ctx.schedule_ready(rank)

    def on_epoch_end(self) -> None:
        self._round_offset += self._frontier()

    def describe(self) -> str:
        return f"{self.name}(K={self.staleness})"


# --------------------------------------------------------------------------- #
# local-sgd: per-trainer replicas, parameter averaging every H steps
# --------------------------------------------------------------------------- #
@SYNC_POLICIES.register("local-sgd", aliases=("localsgd", "periodic-averaging"))
class LocalSGDPolicy(SyncPolicy):
    """Each trainer trains its own replica; replicas average every ``sync_period`` steps.

    Between averaging points trainers never wait for each other (no gradient
    exchange at all); at a sync point every still-active trainer stops, one
    allreduce is charged, replicas (including those of already-exhausted
    trainers) are averaged, and everyone restarts from the consensus
    parameters.  :meth:`on_run_end` performs a final average so the engine's
    ``final_model`` is the consensus model.
    """

    name = "local-sgd"
    owns_replicas = True

    def __init__(self, sync_period: int = 4) -> None:
        if sync_period < 1:
            raise ValueError(f"sync_period must be >= 1, got {sync_period}")
        self.sync_period = int(sync_period)
        self._round_offset = 0
        self._replicas: Optional[Dict[int, Dict[str, np.ndarray]]] = None
        self._optimizers: Optional[Dict[int, object]] = None
        self._syncs = 0

    def bind(self, ctx: SyncContext) -> None:
        super().bind(ctx)
        from repro.nn import build_optimizer

        config = ctx.train_config
        self._replicas = {
            r: ctx.model.state_dict() for r in range(ctx.world_size)
        }
        self._optimizers = {
            r: build_optimizer(config.optimizer, lr=config.learning_rate,
                               weight_decay=config.weight_decay)
            for r in range(ctx.world_size)
        }

    def on_epoch_start(self, active_ranks: List[int]) -> None:
        self._rr = {r: 0 for r in active_ranks}
        self._exhausted: set = set()
        self._at_barrier: set = set()

    def coalescing_round(self, rank: int) -> int:
        return self._round_offset + self._rr.get(rank, 0)

    def before_step(self, rank: int) -> None:
        self.ctx.model.load_state_dict(self._replicas[rank])

    def process_step(self, rank: int, grads: Dict[str, np.ndarray]) -> None:
        # Local update: the trainer's own gradient applied to its own replica
        # (through its own optimizer state), no communication involved.
        self._optimizers[rank].step(self.ctx.model.parameters(), grads)
        self._replicas[rank] = self.ctx.model.state_dict()
        return None

    def on_step_done(self, contribution: StepContribution, now: float) -> None:
        ctx = self.ctx
        rank = contribution.rank
        ctx.record_step(contribution)
        self._rr[rank] += 1
        if self._rr[rank] % self.sync_period == 0:
            self._at_barrier.add(rank)
            self._maybe_sync()
        else:
            ctx.schedule_ready(rank)

    def on_trainer_exhausted(self, rank: int, now: float) -> None:
        self._exhausted.add(rank)
        self._at_barrier.discard(rank)
        self._maybe_sync()

    # ------------------------------------------------------------------ #
    def _active_ranks(self) -> List[int]:
        return [r for r in self._rr if r not in self._exhausted]

    def _maybe_sync(self) -> None:
        active = self._active_ranks()
        if not active or set(active) != self._at_barrier:
            return
        ctx = self.ctx
        participants = sorted(self._at_barrier)
        allreduce_t = ctx.cost_model.time_allreduce(ctx.num_params, ctx.world_size)
        for r in participants:
            ctx.trainers[r].clock.advance(allreduce_t, "allreduce")
            ctx.accumulators[r].totals["allreduce"] += allreduce_t
        latest = max(ctx.trainers[r].clock.time for r in participants)
        for r in participants:
            ctx.stall_until(r, latest)
        self._average_replicas()
        self._syncs += 1
        for r in participants:
            ctx.add_extra(r, "model_averages", 1.0)
        self._at_barrier = set()
        for r in participants:
            ctx.schedule_ready(r)

    def _average_replicas(self) -> None:
        """Average every replica (exhausted trainers included) in rank order."""
        ranks = sorted(self._replicas)
        averaged = {
            name: np.mean([self._replicas[r][name] for r in ranks], axis=0)
            for name in self._replicas[ranks[0]]
        }
        for r in ranks:
            self._replicas[r] = {k: v.copy() for k, v in averaged.items()}
        self.ctx.model.load_state_dict(averaged)

    def on_epoch_end(self) -> None:
        self._round_offset += max(self._rr.values(), default=0)

    def on_run_end(self) -> None:
        ctx = self.ctx
        allreduce_t = ctx.cost_model.time_allreduce(ctx.num_params, ctx.world_size)
        for rank in range(ctx.world_size):
            ctx.trainers[rank].clock.advance(allreduce_t, "allreduce")
            ctx.accumulators[rank].totals["allreduce"] += allreduce_t
        latest = max(t.clock.time for t in ctx.trainers)
        for rank in range(ctx.world_size):
            ctx.stall_until(rank, latest)
        self._average_replicas()

    def describe(self) -> str:
        return f"{self.name}(H={self.sync_period})"


def build_sync_policy(name: str, **kwargs) -> SyncPolicy:
    """Build a registered sync policy by name (see :data:`SYNC_POLICIES`)."""
    return SYNC_POLICIES.build(name, **kwargs)
