"""The discrete-event core: timestamped events popped in deterministic order.

:class:`EventLoop` is a priority queue of :class:`Event`\\ s ordered by
``(timestamp, rank, seq)``:

* **timestamp** — simulated seconds, the primary key;
* **rank** — the trainer the event belongs to (engine-level events use
  ``rank=-1`` so they sort before any trainer's event at the same instant);
* **seq** — monotone insertion counter, the final tie-break, so two events
  pushed for the same trainer at the same timestamp pop in push order.

That total order is what makes the async engine *deterministic*: two runs
with the same seed and schedule process the exact same event sequence, which
``tests/test_async_engine.py`` pins by comparing recorded histories.  With
``record=True`` every popped event is appended to :attr:`EventLoop.history`
as a ``(kind, timestamp, rank, seq)`` tuple for exactly that comparison.

Events are cancelled lazily (:meth:`EventLoop.cancel` marks them and
:meth:`EventLoop.pop` discards marked entries), the standard trick for
mutable schedules over :mod:`heapq`.

Event *kinds* are engine-defined strings.  The async training engine uses
``step-ready``/``step-done`` for scheduling, ``fail``/``recover`` for the
transient-failure machinery, and ``join``/``leave``/``rebalance`` for the
elastic-membership timeline (a materialized
:class:`~repro.events.schedule.ElasticSchedule` is pushed up front and
interleaves with step events by simulated time).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Event:
    """One scheduled occurrence in the simulated cluster."""

    time: float
    rank: int
    seq: int
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    cancelled: bool = False

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.rank, self.seq)


class EventLoop:
    """Deterministic discrete-event queue (ties broken by ``(time, rank, seq)``)."""

    def __init__(self, record: bool = False):
        self._heap: List[Tuple[Tuple[float, int, int], Event]] = []
        self._seq = 0
        self._live = 0
        self.record = record
        #: ``(kind, time, rank, seq)`` of every popped event, in pop order.
        self.history: List[Tuple[str, float, int, int]] = []

    # ------------------------------------------------------------------ #
    def push(self, time: float, kind: str, rank: int = -1, **payload: object) -> Event:
        """Schedule *kind* at simulated *time*; returns the (cancellable) event."""
        if time < 0:
            raise ValueError(f"cannot schedule an event at negative time {time}")
        event = Event(time=float(time), rank=int(rank), seq=self._seq, kind=kind,
                      payload=payload)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Mark *event* cancelled; it will be silently discarded on pop."""
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """The next live event in ``(time, rank, seq)`` order, or ``None``."""
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            if self.record:
                self.history.append((event.kind, event.time, event.rank, event.seq))
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event without popping it."""
        event = self.peek()
        return event.time if event is not None else None

    def peek(self) -> Optional[Event]:
        """The next live event without popping it (``None`` when drained).

        Lets the async engine look ahead for simultaneous ``step-ready``
        events so a parallel execution backend can batch them; the events
        are still consumed through :meth:`pop`, so history is unaffected.
        """
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][1] if self._heap else None

    @property
    def empty(self) -> bool:
        return self._live == 0

    def __len__(self) -> int:
        return self._live
