"""Discrete-event simulation backend for the cluster engines.

This package is the asynchrony layer the lockstep engine cannot express:

* :mod:`repro.events.loop` — :class:`EventLoop`, a deterministic priority
  queue of timestamped events (ties broken by ``(timestamp, rank, seq)``);
* :mod:`repro.events.sync` — the :data:`SYNC_POLICIES` registry of gradient
  synchronization policies (``allreduce-barrier``, ``bounded-staleness``,
  ``local-sgd``) consumed by
  :class:`~repro.training.async_engine.AsyncClusterEngine`;
* :mod:`repro.events.schedule` — seeded, bit-replayable failure and
  congestion schedules (:class:`FailureSpec`, :class:`CongestionSpec`) behind
  the ``trainer-flaky`` and ``congested-link`` scenarios.
"""

from repro.events.loop import Event, EventLoop
from repro.events.schedule import CongestionSpec, FailureSchedule, FailureSpec
from repro.events.sync import (
    SYNC_POLICIES,
    StepContribution,
    SyncContext,
    SyncPolicy,
    build_sync_policy,
)

__all__ = [
    "Event",
    "EventLoop",
    "CongestionSpec",
    "FailureSchedule",
    "FailureSpec",
    "SYNC_POLICIES",
    "StepContribution",
    "SyncContext",
    "SyncPolicy",
    "build_sync_policy",
]
