"""GraphSAGE (mean aggregator) implemented in NumPy with manual backprop.

The paper trains a 2-layer GraphSAGE with fan-out {10, 25} and batch size 2000
(Section V).  This implementation consumes the sampled :class:`Block` objects
produced by the neighbor sampler: each layer computes

    h_dst' = act( h_dst @ W_self + mean_{u in N(dst)} h_u @ W_neigh + b )

and the model returns logits for the seed nodes of the minibatch.  The manual
backward pass mirrors the forward computation exactly and accumulates
gradients into each parameter's ``grad`` buffer, so the distributed trainers
can average them (synchronous DDP) before the optimizer step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layers import Module, Parameter
from repro.nn.tensor_utils import (
    ACTIVATIONS,
    segment_mean,
    segment_mean_backward,
    xavier_uniform,
    zeros,
)
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import SeedLike, derive_seed


class SAGELayer(Module):
    """One GraphSAGE layer with mean neighborhood aggregation."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        seed: SeedLike = None,
    ):
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.activation = activation
        self.w_self = Parameter(xavier_uniform((in_dim, out_dim), seed=derive_seed(seed, 1)))
        self.w_neigh = Parameter(xavier_uniform((in_dim, out_dim), seed=derive_seed(seed, 2)))
        self.bias = Parameter(zeros((out_dim,)))
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------ #
    def forward(self, block: Block, h_src: np.ndarray) -> np.ndarray:
        if h_src.shape[0] != block.num_src:
            raise ValueError(
                f"h_src has {h_src.shape[0]} rows but block expects {block.num_src}"
            )
        h_dst = h_src[: block.num_dst]
        messages = h_src[block.edge_src]
        agg = segment_mean(messages, block.edge_dst, block.num_dst)
        pre = h_dst @ self.w_self.value + agg @ self.w_neigh.value + self.bias.value
        act_fn, _ = ACTIVATIONS[self.activation]
        out = act_fn(pre)
        self._cache = {"block": block, "h_src": h_src, "h_dst": h_dst, "agg": agg, "pre": pre}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        block: Block = cache["block"]
        _, act_bwd = ACTIVATIONS[self.activation]
        grad_pre = act_bwd(grad_out, cache["pre"])

        self.w_self.grad += cache["h_dst"].T @ grad_pre
        self.w_neigh.grad += cache["agg"].T @ grad_pre
        self.bias.grad += grad_pre.sum(axis=0)

        grad_h_dst = grad_pre @ self.w_self.value.T
        grad_agg = grad_pre @ self.w_neigh.value.T

        grad_h_src = np.zeros_like(cache["h_src"])
        grad_h_src[: block.num_dst] += grad_h_dst
        grad_messages = segment_mean_backward(grad_agg, block.edge_dst, block.num_dst)
        np.add.at(grad_h_src, block.edge_src, grad_messages)
        self._cache = None
        return grad_h_src

    def flops(self, block: Block) -> float:
        """Approximate forward+backward FLOPs for this layer on *block*."""
        dense = 2.0 * block.num_dst * self.in_dim * self.out_dim * 2  # self + neigh matmuls
        aggregate = 2.0 * block.num_edges * self.in_dim
        return 3.0 * (dense + aggregate)  # forward + ~2x for backward

    __call__ = forward


class GraphSAGE(Module):
    """Multi-layer GraphSAGE node classifier operating on sampled blocks."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        activation: str = "relu",
        seed: SeedLike = 0,
    ):
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = int(in_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_classes = int(num_classes)
        self.num_layers = int(num_layers)
        dims: List[int] = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        self.layers: List[SAGELayer] = []
        for i in range(num_layers):
            act = activation if i < num_layers - 1 else "none"
            self.layers.append(
                SAGELayer(dims[i], dims[i + 1], activation=act, seed=derive_seed(seed, 10 + i))
            )

    # ------------------------------------------------------------------ #
    def forward(self, blocks: Sequence[Block], features: np.ndarray) -> np.ndarray:
        """Compute seed-node logits from the input-node *features*.

        ``blocks`` is ordered outermost first (as produced by the sampler);
        ``features`` rows align with ``blocks[0].src_nodes``.
        """
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but received {len(blocks)} blocks"
            )
        h = np.asarray(features, dtype=np.float32)
        for layer, block in zip(self.layers, blocks):
            h = layer.forward(block, h)
        return h

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate from seed-node logits back to the input features."""
        grad = grad_logits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, blocks: Sequence[Block], features: np.ndarray) -> np.ndarray:
        """Class predictions for the seed nodes (argmax of logits)."""
        return np.argmax(self.forward(blocks, features), axis=1)

    def flops(self, minibatch: MiniBatch) -> float:
        """Estimated FLOPs to train on *minibatch* (drives simulated t_DDP)."""
        return float(sum(layer.flops(block) for layer, block in zip(self.layers, minibatch.blocks)))

    def reset_caches(self) -> None:
        for layer in self.layers:
            layer._cache = None

    __call__ = forward
