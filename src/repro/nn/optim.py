"""Optimizers operating on name->array parameter/gradient dictionaries.

Both optimizers update parameters *in place*, which is what keeps the single
shared model replica of the simulated DDP trainers consistent (the averaged
gradients are applied exactly once per step, numerically identical to every
replica applying the same update).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.utils.validation import check_positive

ParamDict = Dict[str, np.ndarray]


class Optimizer:
    """Base class: subclasses implement :meth:`step`."""

    def step(self, params: ParamDict, grads: ParamDict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable internal state (momentum/moment buffers); stateless
        optimizers return an empty dict."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (bit-exact buffer contents)."""
        if state:
            raise ValueError(f"stateless optimizer got state keys {sorted(state)}")

    @staticmethod
    def _check_alignment(params: ParamDict, grads: ParamDict) -> None:
        if set(params.keys()) != set(grads.keys()):
            missing = set(params) ^ set(grads)
            raise KeyError(f"parameter/gradient key mismatch: {sorted(missing)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        check_positive(lr, "lr")
        if momentum < 0 or momentum >= 1:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check_alignment(params, grads)
        for name, value in params.items():
            grad = grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * value
            if self.momentum:
                vel = self._velocity.setdefault(name, np.zeros_like(value))
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            value -= self.lr * update

    def state_dict(self) -> Dict[str, Any]:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._velocity = {k: np.array(v, copy=True) for k, v in state["velocity"].items()}


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        check_positive(lr, "lr")
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        self._check_alignment(params, grads)
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for name, value in params.items():
            grad = grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * value
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
            "t": self._t,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._m = {k: np.array(v, copy=True) for k, v in state["m"].items()}
        self._v = {k: np.array(v, copy=True) for k, v in state["v"].items()}
        self._t = int(state["t"])


def build_optimizer(name: str, lr: float, **kwargs) -> Optimizer:
    """Factory: ``'sgd'`` or ``'adam'``."""
    if name == "sgd":
        return SGD(lr=lr, **kwargs)
    if name == "adam":
        return Adam(lr=lr, **kwargs)
    raise ValueError(f"unknown optimizer {name!r}")
