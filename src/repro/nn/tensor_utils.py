"""Segment operations and initializers for the NumPy GNN layers.

GNN message passing over sampled blocks reduces edge messages onto destination
nodes.  These helpers implement the segment reductions (sum / mean / softmax)
and their backward passes using vectorized ``np.add.at`` scatter operations,
which keeps the layer code free of Python-level edge loops.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


# --------------------------------------------------------------------------- #
# Initializers
# --------------------------------------------------------------------------- #
def xavier_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = ensure_rng(seed)
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


# --------------------------------------------------------------------------- #
# Segment reductions
# --------------------------------------------------------------------------- #
def segment_sum(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum *values* rows into *num_segments* buckets given by *segment_ids*."""
    out_shape = (num_segments,) + values.shape[1:]
    out = np.zeros(out_shape, dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def segment_count(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of entries per segment."""
    return np.bincount(segment_ids, minlength=num_segments).astype(np.int64)


def segment_mean(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Mean of *values* per segment; empty segments yield zero rows."""
    sums = segment_sum(values, segment_ids, num_segments)
    counts = segment_count(segment_ids, num_segments).astype(values.dtype)
    counts = np.maximum(counts, 1)
    return sums / counts.reshape((-1,) + (1,) * (values.ndim - 1))


def segment_mean_backward(
    grad_out: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Backward of :func:`segment_mean`: distribute gradient / count to each entry."""
    counts = segment_count(segment_ids, num_segments).astype(grad_out.dtype)
    counts = np.maximum(counts, 1)
    scaled = grad_out / counts.reshape((-1,) + (1,) * (grad_out.ndim - 1))
    return scaled[segment_ids]


def segment_softmax(
    scores: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Numerically stable softmax of *scores* within each segment.

    ``scores`` has shape ``(num_edges, ...)``; the softmax normalizes over all
    edges sharing a segment id, independently per trailing dimension.
    """
    if len(scores) == 0:
        return scores.copy()
    seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf, dtype=scores.dtype)
    np.maximum.at(seg_max, segment_ids, scores)
    shifted = scores - seg_max[segment_ids]
    exp = np.exp(shifted)
    denom = segment_sum(exp, segment_ids, num_segments)
    denom = np.maximum(denom, np.finfo(scores.dtype).tiny)
    return exp / denom[segment_ids]


def segment_softmax_backward(
    grad_alpha: np.ndarray,
    alpha: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
) -> np.ndarray:
    """Backward of :func:`segment_softmax`.

    ``d_score = alpha * (d_alpha - sum_seg(alpha * d_alpha))``.
    """
    weighted = alpha * grad_alpha
    seg_dot = segment_sum(weighted, segment_ids, num_segments)
    return alpha * (grad_alpha - seg_dot[segment_ids])


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(grad: np.ndarray, pre_activation: np.ndarray) -> np.ndarray:
    return grad * (pre_activation > 0)


def leaky_relu(x: np.ndarray, slope: float = 0.2) -> np.ndarray:
    return np.where(x > 0, x, slope * x)


def leaky_relu_backward(grad: np.ndarray, pre_activation: np.ndarray, slope: float = 0.2) -> np.ndarray:
    return grad * np.where(pre_activation > 0, 1.0, slope)


def identity(x: np.ndarray) -> np.ndarray:
    return x


ACTIVATIONS = {
    "relu": (relu, relu_backward),
    "none": (identity, lambda grad, pre: grad),
}
