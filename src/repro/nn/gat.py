"""Graph Attention Network (GAT) in NumPy with manual backprop.

Section V-A4 of the paper extends the evaluation to a 2-head GAT on the
papers100M dataset to show the prefetching scheme is architecture-agnostic.
This implementation follows the original GAT formulation:

    e_ij   = LeakyReLU( a_l · (W h_i) + a_r · (W h_j) )
    α_ij   = softmax_j(e_ij)            (normalized over j's in-neighbors)
    h_j'   = act( Σ_i α_ij · W h_i )

Heads are concatenated on hidden layers and averaged on the output layer.
The backward pass propagates through the segment softmax, the attention
scores, and the shared projection, accumulating gradients for DDP averaging.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layers import Module, Parameter
from repro.nn.tensor_utils import (
    leaky_relu,
    leaky_relu_backward,
    relu,
    relu_backward,
    segment_softmax,
    segment_softmax_backward,
    segment_sum,
    xavier_uniform,
    zeros,
)
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import SeedLike, derive_seed


class GATLayer(Module):
    """One multi-head graph attention layer."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 2,
        *,
        negative_slope: float = 0.2,
        combine: str = "concat",
        activation: str = "relu",
        seed: SeedLike = None,
    ):
        if combine not in ("concat", "mean"):
            raise ValueError("combine must be 'concat' or 'mean'")
        if activation not in ("relu", "none"):
            raise ValueError("activation must be 'relu' or 'none'")
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.num_heads = int(num_heads)
        self.negative_slope = float(negative_slope)
        self.combine = combine
        self.activation = activation
        self.weight = Parameter(
            xavier_uniform((in_dim, num_heads * out_dim), seed=derive_seed(seed, 1))
        )
        self.attn_l = Parameter(
            xavier_uniform((num_heads, out_dim), seed=derive_seed(seed, 2))
        )
        self.attn_r = Parameter(
            xavier_uniform((num_heads, out_dim), seed=derive_seed(seed, 3))
        )
        self.bias = Parameter(zeros((self.output_dim,)))
        self._cache: Optional[dict] = None

    @property
    def output_dim(self) -> int:
        return self.out_dim * self.num_heads if self.combine == "concat" else self.out_dim

    # ------------------------------------------------------------------ #
    def forward(self, block: Block, h_src: np.ndarray) -> np.ndarray:
        if h_src.shape[0] != block.num_src:
            raise ValueError("h_src row count does not match block.num_src")
        H, D = self.num_heads, self.out_dim
        z_src = (h_src @ self.weight.value).reshape(block.num_src, H, D)
        z_dst = z_src[: block.num_dst]

        el = (z_src * self.attn_l.value[None]).sum(axis=2)            # (num_src, H)
        er = (z_dst * self.attn_r.value[None]).sum(axis=2)            # (num_dst, H)
        score_pre = el[block.edge_src] + er[block.edge_dst]           # (num_edges, H)
        score = leaky_relu(score_pre, self.negative_slope)
        alpha = segment_softmax(score, block.edge_dst, block.num_dst)  # (num_edges, H)

        messages = alpha[:, :, None] * z_src[block.edge_src]          # (num_edges, H, D)
        agg = segment_sum(messages, block.edge_dst, block.num_dst)    # (num_dst, H, D)

        if self.combine == "concat":
            combined = agg.reshape(block.num_dst, H * D)
        else:
            combined = agg.mean(axis=1)
        pre = combined + self.bias.value
        out = relu(pre) if self.activation == "relu" else pre

        self._cache = {
            "block": block,
            "h_src": h_src,
            "z_src": z_src,
            "alpha": alpha,
            "score_pre": score_pre,
            "agg": agg,
            "pre": pre,
        }
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        block: Block = cache["block"]
        H, D = self.num_heads, self.out_dim

        grad_pre = relu_backward(grad_out, cache["pre"]) if self.activation == "relu" else grad_out
        self.bias.grad += grad_pre.sum(axis=0)

        if self.combine == "concat":
            grad_agg = grad_pre.reshape(block.num_dst, H, D)
        else:
            grad_agg = np.repeat(grad_pre[:, None, :], H, axis=1) / H

        # Through the segment sum: every edge message gets its dst's gradient.
        grad_messages = grad_agg[block.edge_dst]                      # (num_edges, H, D)
        z_src_e = cache["z_src"][block.edge_src]
        alpha = cache["alpha"]

        grad_alpha = (grad_messages * z_src_e).sum(axis=2)            # (num_edges, H)
        grad_z_src = np.zeros_like(cache["z_src"])
        np.add.at(grad_z_src, block.edge_src, alpha[:, :, None] * grad_messages)

        grad_score = segment_softmax_backward(grad_alpha, alpha, block.edge_dst, block.num_dst)
        grad_score_pre = leaky_relu_backward(grad_score, cache["score_pre"], self.negative_slope)

        grad_el = np.zeros((block.num_src, H), dtype=np.float32)
        grad_er = np.zeros((block.num_dst, H), dtype=np.float32)
        np.add.at(grad_el, block.edge_src, grad_score_pre)
        np.add.at(grad_er, block.edge_dst, grad_score_pre)

        # el = sum(z_src * attn_l); er = sum(z_dst * attn_r)
        self.attn_l.grad += (grad_el[:, :, None] * cache["z_src"]).sum(axis=0)
        self.attn_r.grad += (grad_er[:, :, None] * cache["z_src"][: block.num_dst]).sum(axis=0)
        grad_z_src += grad_el[:, :, None] * self.attn_l.value[None]
        grad_z_src[: block.num_dst] += grad_er[:, :, None] * self.attn_r.value[None]

        grad_z_flat = grad_z_src.reshape(block.num_src, H * D)
        self.weight.grad += cache["h_src"].T @ grad_z_flat
        grad_h_src = grad_z_flat @ self.weight.value.T
        self._cache = None
        return grad_h_src

    def flops(self, block: Block) -> float:
        """Approximate forward+backward FLOPs (GAT is heavier than SAGE per edge)."""
        proj = 2.0 * block.num_src * self.in_dim * self.num_heads * self.out_dim
        attn = 6.0 * block.num_edges * self.num_heads * self.out_dim
        return 3.0 * (proj + attn)

    __call__ = forward


class GAT(Module):
    """Multi-layer, multi-head GAT node classifier on sampled blocks."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        num_heads: int = 2,
        seed: SeedLike = 0,
    ):
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.in_dim = int(in_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_classes = int(num_classes)
        self.num_layers = int(num_layers)
        self.num_heads = int(num_heads)
        self.layers: List[GATLayer] = []
        current_dim = in_dim
        for i in range(num_layers):
            is_last = i == num_layers - 1
            layer = GATLayer(
                current_dim,
                num_classes if is_last else hidden_dim,
                num_heads=num_heads,
                combine="mean" if is_last else "concat",
                activation="none" if is_last else "relu",
                seed=derive_seed(seed, 20 + i),
            )
            self.layers.append(layer)
            current_dim = layer.output_dim

    def forward(self, blocks: Sequence[Block], features: np.ndarray) -> np.ndarray:
        if len(blocks) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but received {len(blocks)} blocks"
            )
        h = np.asarray(features, dtype=np.float32)
        for layer, block in zip(self.layers, blocks):
            h = layer.forward(block, h)
        return h

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        grad = grad_logits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, blocks: Sequence[Block], features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(blocks, features), axis=1)

    def flops(self, minibatch: MiniBatch) -> float:
        return float(sum(layer.flops(block) for layer, block in zip(self.layers, minibatch.blocks)))

    __call__ = forward
