"""NumPy GNN models: GraphSAGE, GAT, losses, and optimizers."""

from repro.nn.gat import GAT, GATLayer
from repro.nn.graphsage import GraphSAGE, SAGELayer
from repro.nn.layers import Linear, Module, Parameter
from repro.nn.loss import accuracy, cross_entropy, softmax, top_k_accuracy
from repro.nn.optim import Adam, Optimizer, SGD, build_optimizer


def build_model(
    arch: str,
    in_dim: int,
    hidden_dim: int,
    num_classes: int,
    num_layers: int = 2,
    num_heads: int = 2,
    seed: int = 0,
):
    """Factory for the architectures the paper evaluates (``sage`` and ``gat``)."""
    if arch in ("sage", "graphsage"):
        return GraphSAGE(in_dim, hidden_dim, num_classes, num_layers=num_layers, seed=seed)
    if arch == "gat":
        return GAT(
            in_dim, hidden_dim, num_classes, num_layers=num_layers, num_heads=num_heads, seed=seed
        )
    raise ValueError(f"unknown architecture {arch!r}; expected 'sage' or 'gat'")


__all__ = [
    "GAT",
    "GATLayer",
    "GraphSAGE",
    "SAGELayer",
    "Linear",
    "Module",
    "Parameter",
    "accuracy",
    "cross_entropy",
    "softmax",
    "top_k_accuracy",
    "Adam",
    "Optimizer",
    "SGD",
    "build_optimizer",
    "build_model",
]
