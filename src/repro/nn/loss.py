"""Loss functions and classification metrics."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise, numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    Returns ``(loss, grad_logits)`` where ``grad_logits`` already includes the
    ``1/N`` averaging factor, so it can be fed straight into ``model.backward``.
    """
    labels = check_1d_int_array(labels, "labels")
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if len(labels) != len(logits):
        raise ValueError("labels and logits must align")
    if len(labels) == 0:
        return 0.0, np.zeros_like(logits)
    if labels.max() >= logits.shape[1]:
        raise ValueError("label id exceeds number of classes")
    probs = softmax(logits.astype(np.float64))
    n = len(labels)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)


def accuracy(logits_or_preds: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy; accepts either logits or predicted class ids."""
    labels = check_1d_int_array(labels, "labels")
    if len(labels) == 0:
        return 0.0
    if logits_or_preds.ndim == 2:
        preds = np.argmax(logits_or_preds, axis=1)
    else:
        preds = logits_or_preds.astype(np.int64)
    return float(np.mean(preds == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy from logits."""
    labels = check_1d_int_array(labels, "labels")
    if len(labels) == 0:
        return 0.0
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean([labels[i] in topk[i] for i in range(len(labels))]))
