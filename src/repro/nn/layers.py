"""Basic dense building blocks shared by the GNN models."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.tensor_utils import xavier_uniform, zeros
from repro.utils.rng import SeedLike


class Parameter:
    """A trainable array together with its accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Minimal module base: named parameters, grads, and state dicts."""

    def named_parameters(self) -> Dict[str, Parameter]:
        params: Dict[str, Parameter] = {}
        for attr, value in vars(self).items():
            if isinstance(value, Parameter):
                params[attr] = value
            elif isinstance(value, Module):
                for sub_name, sub_param in value.named_parameters().items():
                    params[f"{attr}.{sub_name}"] = sub_param
            elif isinstance(value, (list, tuple)):
                for idx, item in enumerate(value):
                    if isinstance(item, Module):
                        for sub_name, sub_param in item.named_parameters().items():
                            params[f"{attr}.{idx}.{sub_name}"] = sub_param
        return params

    def parameters(self) -> Dict[str, np.ndarray]:
        """Parameter values keyed by name (views, not copies)."""
        return {name: p.value for name, p in self.named_parameters().items()}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Accumulated gradients keyed by name (views, not copies)."""
        return {name: p.grad for name, p in self.named_parameters().items()}

    def zero_grad(self) -> None:
        for p in self.named_parameters().values():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.value.size for p in self.named_parameters().values()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.value.copy() for name, p in self.named_parameters().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.named_parameters()
        if set(state.keys()) != set(params.keys()):
            missing = set(params) ^ set(state)
            raise KeyError(f"state dict mismatch on keys: {sorted(missing)}")
        for name, value in state.items():
            if params[name].value.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            params[name].value[...] = value


class Linear(Module):
    """Affine layer ``y = x W + b`` with manual backward."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True, seed: SeedLike = None):
        self.weight = Parameter(xavier_uniform((in_dim, out_dim), seed=seed))
        self.bias: Optional[Parameter] = Parameter(zeros((out_dim,))) if bias else None
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._cache_x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    __call__ = forward
