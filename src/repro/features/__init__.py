"""Unified feature-access layer (DGL ``DistTensor``/GraphBolt-feature analog).

``repro.features`` decouples *what features a minibatch needs* from *how they
are fetched*.  A :class:`FeatureSource` serves rows for global node ids and
reports the simulated cost; a :class:`FeatureStore` composes a local and a
halo source and routes each minibatch's input nodes between them.  The
baseline DistDGL path, the MassiveGNN prefetch buffer, and ablation caches are
all sources — training pipelines pick them by registry name.
"""

from repro.features.source import FeatureSource, FetchResult, FetchStats
from repro.features.sources import (
    FEATURE_SOURCES,
    BufferedSource,
    LocalKVStoreSource,
    RemoteRPCSource,
    SourceContext,
    StaticDegreeCacheSource,
    TieredCacheSource,
    build_feature_source,
)
from repro.features.shared import (
    SharedDatasetHandle,
    export_shared_dataset,
    load_shared_dataset,
)
from repro.features.store import FeatureStore

__all__ = [
    "SharedDatasetHandle",
    "export_shared_dataset",
    "load_shared_dataset",
    "FeatureSource",
    "FetchResult",
    "FetchStats",
    "FEATURE_SOURCES",
    "BufferedSource",
    "LocalKVStoreSource",
    "RemoteRPCSource",
    "SourceContext",
    "StaticDegreeCacheSource",
    "TieredCacheSource",
    "build_feature_source",
    "FeatureStore",
]
