"""The :class:`FeatureSource` protocol and its fetch accounting types.

A feature source answers one question — *give me the feature rows for these
global node ids* — and reports what that cost: simulated copy/RPC time plus
the operation counts (membership lookups, score updates, eviction work) that
the training engine converts into the paper's simulated-time model.  The
protocol is the seam that makes data paths pluggable: the DistDGL baseline,
the MassiveGNN prefetch buffer, and any new caching strategy are all just
sources composed behind a :class:`~repro.features.store.FeatureStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@dataclass
class FetchStats:
    """Accounting for one :meth:`FeatureSource.fetch` call (mergeable)."""

    source: str = ""
    num_requested: int = 0
    num_hits: int = 0                 # rows served without any RPC
    num_misses: int = 0               # rows that required a remote pull
    copy_time_s: float = 0.0          # simulated local memory-copy time
    rpc_time_s: float = 0.0           # simulated remote-pull time
    bytes_fetched: int = 0            # bytes moved over the simulated network
    remote_nodes_fetched: int = 0     # rows pulled remotely (misses + refills)
    lookup_nodes: int = 0             # membership tests performed
    scoring_nodes: int = 0            # S_E decays + S_A increments performed
    eviction_round: bool = False
    nodes_evicted: int = 0
    nodes_replaced: int = 0
    buffer_capacity: int = 0
    # Per-tier counters of the tiered cache stack, keyed "{tier}.{counter}"
    # (e.g. "hot.hits", "shared.evictions").  Empty for cache-less sources so
    # the historical flat schema — which the golden fixtures pin — is
    # untouched unless tiers are actually in play.
    tier_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.num_hits + self.num_misses
        return self.num_hits / total if total else 0.0

    def merge(self, other: "FetchStats") -> "FetchStats":
        """Combine two fetch outcomes (per-source stats -> per-minibatch stats)."""
        merged_tiers = dict(self.tier_counters)
        for key, value in other.tier_counters.items():
            merged_tiers[key] = merged_tiers.get(key, 0.0) + value
        return FetchStats(
            source=self.source if self.source == other.source else "merged",
            num_requested=self.num_requested + other.num_requested,
            num_hits=self.num_hits + other.num_hits,
            num_misses=self.num_misses + other.num_misses,
            copy_time_s=self.copy_time_s + other.copy_time_s,
            rpc_time_s=self.rpc_time_s + other.rpc_time_s,
            bytes_fetched=self.bytes_fetched + other.bytes_fetched,
            remote_nodes_fetched=self.remote_nodes_fetched + other.remote_nodes_fetched,
            lookup_nodes=self.lookup_nodes + other.lookup_nodes,
            scoring_nodes=self.scoring_nodes + other.scoring_nodes,
            eviction_round=self.eviction_round or other.eviction_round,
            nodes_evicted=self.nodes_evicted + other.nodes_evicted,
            nodes_replaced=self.nodes_replaced + other.nodes_replaced,
            buffer_capacity=max(self.buffer_capacity, other.buffer_capacity),
            tier_counters=merged_tiers,
        )

    def as_dict(self) -> Dict[str, float]:
        out = dict(self.__dict__)
        out["hit_rate"] = self.hit_rate
        if not self.tier_counters:
            out.pop("tier_counters")
        return out


@dataclass
class FetchResult:
    """Per-minibatch outcome of a :class:`~repro.features.store.FeatureStore` fetch."""

    per_source: Dict[str, FetchStats] = field(default_factory=dict)

    @property
    def merged(self) -> FetchStats:
        total = FetchStats()
        for stats in self.per_source.values():
            total = total.merge(stats)
        return total

    def source(self, name: str) -> FetchStats:
        return self.per_source[name]


@runtime_checkable
class FeatureSource(Protocol):
    """Anything that can serve feature rows for global node ids.

    Implementations must align the returned rows with the requested ids and
    report the cost of doing so in a :class:`FetchStats`.  ``nbytes`` exposes
    the memory the source pins (buffer + index structures) and ``summary``
    returns the introspection counters benchmarks tabulate.
    """

    name: str

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        """Return ``(rows, stats)``; ``rows[i]`` is the feature row of ``global_ids[i]``."""
        ...

    def nbytes(self) -> int:
        """Resident memory attributable to this source, in bytes."""
        ...

    def summary(self) -> Dict[str, float]:
        """Cumulative counters for reports and benchmark tables."""
        ...


class SourceTelemetry:
    """Optional mixin-style attributes a source may expose.

    * ``tracker`` — a :class:`~repro.core.metrics.HitRateTracker` recording the
      per-step hit/miss trajectory (Fig. 10);
    * ``initialize()`` — one-time population cost, returning an init-report
      dict (Fig. 8) whose ``rpc_time_s`` the engine charges to the trainer
      clock before the first minibatch;
    * ``prefetcher`` — the wrapped :class:`~repro.core.prefetcher.Prefetcher`
      when the source is buffer-backed.

    The engine and :class:`FeatureStore` only use these via ``getattr`` so
    plain sources need none of them.
    """

    tracker = None
    prefetcher = None

    def initialize(self) -> Optional[Dict[str, float]]:  # pragma: no cover - interface default
        return None
