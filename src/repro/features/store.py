"""The :class:`FeatureStore`: route minibatch node ids to composed sources.

A feature store owns two :class:`~repro.features.source.FeatureSource`\\ s —
one for the rows the trainer's partition owns (served as memory copies) and
one for halo rows (served by whatever data path the pipeline is configured
with: plain RPC, the MassiveGNN prefetch buffer, a static cache, ...).  Its
job per minibatch is the DGL ``DistTensor``-shaped contract: *here are the
input nodes, give me one aligned feature matrix and tell me what it cost*,
with per-source accounting aggregated into a
:class:`~repro.features.source.FetchResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.features.source import FeatureSource, FetchResult, FetchStats
from repro.graph.halo import GraphPartition
from repro.sampling.neighbor_sampler import split_local_halo
from repro.utils.validation import check_1d_int_array

LOCAL_ROLE = "local"
HALO_ROLE = "halo"


class FeatureStore:
    """Route a minibatch's input nodes to local vs. halo feature sources."""

    def __init__(
        self,
        partition: GraphPartition,
        local_source: FeatureSource,
        halo_source: FeatureSource,
    ):
        self.partition = partition
        self.local_source = local_source
        self.halo_source = halo_source
        self._owned_sorted = np.sort(partition.owned_global)

    # ------------------------------------------------------------------ #
    @property
    def sources(self) -> Dict[str, FeatureSource]:
        """Role -> source mapping (roles are ``"local"`` and ``"halo"``)."""
        return {LOCAL_ROLE: self.local_source, HALO_ROLE: self.halo_source}

    @property
    def feature_dim(self) -> int:
        return self.local_source.feature_dim  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    def initialize(self) -> Optional[Dict[str, float]]:
        """One-time population of sources that need it (e.g. prefetch buffers).

        Returns the halo source's init report (Fig. 8) or ``None`` when the
        composed sources need no initialization.
        """
        report: Optional[Dict[str, float]] = None
        for source in (self.local_source, self.halo_source):
            init = getattr(source, "initialize", None)
            if init is not None:
                out = init()
                if out is not None:
                    report = out
        return report

    def fetch_minibatch(self, minibatch) -> Tuple[np.ndarray, FetchResult]:
        """Assemble the input feature matrix for one sampled minibatch.

        ``minibatch`` needs ``input_local``, ``input_global`` and
        ``num_input_nodes`` (a :class:`~repro.sampling.block.MiniBatch`).  Rows
        of the returned matrix align with the minibatch's input-node order.
        """
        local_ids, halo_ids, local_rows, halo_rows = split_local_halo(self.partition, minibatch)

        features = np.zeros((minibatch.num_input_nodes, self.feature_dim), dtype=np.float32)
        rows, local_stats = self.local_source.fetch(local_ids)
        features[local_rows] = rows
        rows, halo_stats = self.halo_source.fetch(halo_ids)
        features[halo_rows] = rows

        return features, FetchResult(per_source={LOCAL_ROLE: local_stats, HALO_ROLE: halo_stats})

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        """Protocol-compatible fetch: route arbitrary global ids by ownership.

        Every id must be a node this partition knows about (owned or halo).
        An id outside that universe used to fall through to the halo source
        and fail far from the caller (or not at all, for book-routed sources);
        now it raises ``KeyError`` here, naming the offending ids — the same
        guard :func:`repro.features.sources.halo_owners` applies to halos.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        known = self.partition.contains(global_ids)
        if len(global_ids) and not np.all(known):
            missing = global_ids[~known][:5]
            raise KeyError(
                f"nodes {missing.tolist()} are neither owned by nor halo "
                f"neighbors of partition {self.partition.part_id}; refusing to "
                f"guess an owner for them"
            )
        # Ownership, not structural presence: halo nodes are *contained* in the
        # partition's local graph but their features live on other machines.
        # Membership is decided without clipping searchsorted into range — an
        # id past the last owned id is out of range, not the last owned row.
        if len(self._owned_sorted):
            idx = np.searchsorted(self._owned_sorted, global_ids)
            in_range = idx < len(self._owned_sorted)
            is_local = np.zeros(len(global_ids), dtype=bool)
            is_local[in_range] = self._owned_sorted[idx[in_range]] == global_ids[in_range]
        else:
            is_local = np.zeros(len(global_ids), dtype=bool)
        local_rows = np.nonzero(is_local)[0]
        halo_rows = np.nonzero(~is_local)[0]
        features = np.zeros((len(global_ids), self.feature_dim), dtype=np.float32)
        rows, local_stats = self.local_source.fetch(global_ids[local_rows])
        features[local_rows] = rows
        rows, halo_stats = self.halo_source.fetch(global_ids[halo_rows])
        features[halo_rows] = rows
        return features, local_stats.merge(halo_stats)

    def end_epoch(self) -> None:
        """Epoch boundary: forward to sources that adapt between epochs.

        The tiered cache's adaptive capacity controller re-splits tier
        budgets here; sources without an ``end_epoch`` hook are skipped, so
        the call is free for the classic data paths.
        """
        for source in self.sources.values():
            hook = getattr(source, "end_epoch", None)
            if hook is not None:
                hook()

    # ------------------------------------------------------------------ #
    # Telemetry pass-throughs (engine and benchmarks read these).
    # ------------------------------------------------------------------ #
    @property
    def tracker(self):
        """The halo source's hit-rate tracker, if it keeps one."""
        return getattr(self.halo_source, "tracker", None)

    @property
    def prefetcher(self):
        """The wrapped Prefetcher when the halo path is buffer-backed."""
        return getattr(self.halo_source, "prefetcher", None)

    @property
    def hit_rate(self) -> Optional[float]:
        tracker = self.tracker
        return tracker.cumulative_hit_rate if tracker is not None else None

    def nbytes(self) -> int:
        """Trainer-side memory pinned by the composed sources."""
        return int(sum(source.nbytes() for source in self.sources.values()))

    def summary(self) -> Dict[str, float]:
        """Flat per-source counter dump (keys prefixed with the source role)."""
        out: Dict[str, float] = {"nbytes": float(self.nbytes())}
        for role, source in self.sources.items():
            for key, value in source.summary().items():
                out[f"{role}.{key}"] = float(value)
        return out

    def cache_summary(self) -> Dict[str, float]:
        """Per-tier cache counters of the composed sources (empty when tier-less).

        Keys are ``{role}.tier.{tier}.{counter}``; the cluster engine threads
        them into :class:`~repro.training.cluster_engine.TrainerRunStats` so
        tier hit rates and eviction churn surface in cluster reports without
        touching the tier-less report schema the golden fixtures pin.
        """
        out: Dict[str, float] = {}
        for role, source in self.sources.items():
            tier_summary = getattr(source, "tier_summary", None)
            if tier_summary is None:
                continue
            for key, value in tier_summary().items():
                out[f"{role}.{key}"] = float(value)
        return out


# Summary keys that describe a level (rate/capacity/resident bytes) rather
# than a count; cluster aggregation averages these instead of summing.
_LEVEL_KEYS = (
    "hit_rate",
    "buffer_capacity",
    "nbytes",
    "buffer_nbytes",
    "scoreboard_nbytes",
    "server_nbytes",
)


def merge_store_summaries(summaries: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Aggregate per-trainer :meth:`FeatureStore.summary` dicts cluster-wide.

    Counter-like keys (calls, rows served, remote nodes fetched) are summed;
    level-like keys (hit rates, capacities, resident bytes) are averaged, so
    the result reads as "the cluster's totals plus the mean per-trainer state".
    Machine-**shared** cache-tier keys (``*.tier.shared.*``) are averaged
    wholesale: the tier is one object reported identically by every trainer
    on its machine, so summing would multiply its cumulative counters by
    ``trainers_per_machine`` — the mean instead reads as "the per-machine
    shared-tier state".
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for summary in summaries:
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
    merged: Dict[str, float] = {}
    for key, value in totals.items():
        if key.rsplit(".", 1)[-1] in _LEVEL_KEYS or ".tier.shared." in key:
            merged[key] = value / counts[key]
        else:
            merged[key] = value
    return merged
