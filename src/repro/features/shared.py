"""Shared-memory (memmap) export of a dataset + partition for worker processes.

The process-pool execution backend rebuilds a full ``SimCluster`` inside each
worker.  Everything *structural* (partition books, halo maps, trainer seed
splits) is cheap to rebuild deterministically from configs, but the big
read-only arrays — the CSR graph, the feature matrix, labels, masks, the
partition assignment, and each partition server's KVStore payload — must not
be duplicated per worker.  This module writes them once as ``.npy`` files and
hands workers a pickle-safe :class:`SharedDatasetHandle`; workers re-open the
files with ``mmap_mode="r"`` so the OS page cache shares the physical pages
across all processes and any write attempt raises.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, SharedCSRHandle
from repro.graph.datasets import DatasetSpec, GraphDataset
from repro.graph.partition import PartitionResult


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Pickle-safe pointer to a memmap-exported dataset + partition.

    Carries only file paths and plain metadata — never live arrays or
    objects — so it crosses process boundaries under spawn-start.
    """

    directory: str
    name: str
    num_classes: int
    graph: SharedCSRHandle
    features_path: str
    labels_path: str
    train_mask_path: str
    val_mask_path: str
    test_mask_path: str
    parts_path: str
    num_parts: int
    partition_method: str
    spec: Optional[DatasetSpec] = None
    metadata: Dict[str, float] = field(default_factory=dict)
    partition_stats: Dict[str, float] = field(default_factory=dict)
    # (part_id, ids_path, rows_path) per partition server, in part_id order.
    server_rows: Tuple[Tuple[int, str, str], ...] = ()


def _save(directory: str, name: str, array: np.ndarray) -> str:
    path = os.path.join(directory, f"{name}.npy")
    np.save(path, np.ascontiguousarray(array))
    return path


def export_shared_dataset(
    dataset: GraphDataset,
    partition_result: PartitionResult,
    server_payloads: Dict[int, Tuple[np.ndarray, np.ndarray]],
    directory: str,
) -> SharedDatasetHandle:
    """Write *dataset* and its partition to ``.npy`` files under *directory*.

    ``server_payloads`` maps ``part_id`` to the owning KVStore's pre-sorted
    ``(ids, rows)`` arrays (see :meth:`~repro.distributed.kvstore.KVStore.
    shared_arrays`); exporting the store layout lets workers adopt the rows
    without re-sorting or copying.
    """
    os.makedirs(directory, exist_ok=True)
    rows_entries = []
    for part_id in sorted(server_payloads):
        ids, rows = server_payloads[part_id]
        rows_entries.append(
            (
                int(part_id),
                _save(directory, f"server_{part_id}_ids", ids),
                _save(directory, f"server_{part_id}_rows", rows),
            )
        )
    return SharedDatasetHandle(
        directory=directory,
        name=dataset.name,
        num_classes=int(dataset.num_classes),
        graph=dataset.graph.to_shared(directory),
        features_path=_save(directory, "features", dataset.features),
        labels_path=_save(directory, "labels", dataset.labels),
        train_mask_path=_save(directory, "train_mask", dataset.train_mask),
        val_mask_path=_save(directory, "val_mask", dataset.val_mask),
        test_mask_path=_save(directory, "test_mask", dataset.test_mask),
        parts_path=_save(directory, "parts", partition_result.parts),
        num_parts=int(partition_result.num_parts),
        partition_method=partition_result.method,
        spec=dataset.spec,
        metadata=dict(dataset.metadata),
        partition_stats=dict(partition_result.stats),
        server_rows=tuple(rows_entries),
    )


def load_shared_dataset(
    handle: SharedDatasetHandle,
) -> Tuple[GraphDataset, PartitionResult, Dict[int, Tuple[np.ndarray, np.ndarray]]]:
    """Re-open a :func:`export_shared_dataset` export as read-only memmaps.

    Returns the dataset, the partition result, and the per-partition KVStore
    payloads, all backed by ``mmap_mode="r"`` arrays (value-identical to the
    exporting process's arrays; writes raise ``ValueError``).
    """

    def mapped(path: str) -> np.ndarray:
        return np.load(path, mmap_mode="r")

    dataset = GraphDataset(
        name=handle.name,
        graph=CSRGraph.from_shared(handle.graph),
        features=mapped(handle.features_path),
        labels=mapped(handle.labels_path),
        train_mask=mapped(handle.train_mask_path),
        val_mask=mapped(handle.val_mask_path),
        test_mask=mapped(handle.test_mask_path),
        num_classes=handle.num_classes,
        spec=handle.spec,
        metadata=dict(handle.metadata),
    )
    partition_result = PartitionResult(
        parts=mapped(handle.parts_path),
        num_parts=handle.num_parts,
        method=handle.partition_method,
        stats=dict(handle.partition_stats),
    )
    server_rows = {
        part_id: (mapped(ids_path), mapped(rows_path))
        for part_id, ids_path, rows_path in handle.server_rows
    }
    return dataset, partition_result, server_rows
