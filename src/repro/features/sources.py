"""Concrete feature sources: local KVStore, remote RPC, prefetch buffer, static cache.

Each source implements the :class:`~repro.features.source.FeatureSource`
protocol over a different data path:

* :class:`LocalKVStoreSource` — memory copies from the trainer's co-located
  partition server (the local half of both pipelines);
* :class:`RemoteRPCSource` — every row pulled from its owning partition over
  simulated RPC (the DistDGL baseline halo path, Eq. 2);
* :class:`BufferedSource` — wraps a :class:`~repro.core.prefetcher.Prefetcher`
  so Algorithms 1–2 (scored prefetch + eviction) serve the halo path, with the
  prefetcher's exact operation counts surfaced as :class:`FetchStats`;
* :class:`StaticDegreeCacheSource` — a degree-ranked cache populated once and
  never updated: the natural ablation showing why continuous eviction beats a
  static cache under stochastic neighbor sampling.

Sources are registered in :data:`FEATURE_SOURCES` and built by name from a
:class:`SourceContext` via :func:`build_feature_source`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy, build_eviction_policy
from repro.core.metrics import HitRateTracker
from repro.core.prefetcher import Prefetcher
from repro.distributed.cost_model import BYTES_PER_FEATURE
from repro.distributed.rpc import RPCChannel
from repro.features.source import FetchStats
from repro.graph.halo import GraphPartition
from repro.graph.partition_book import PartitionBook
from repro.utils.registry import Registry
from repro.utils.validation import check_1d_int_array


def halo_owners(partition: GraphPartition, global_ids: np.ndarray) -> np.ndarray:
    """Owning partition of each halo node, validating membership.

    Ids that are not halo neighbors of *partition* (e.g. nodes of a
    non-adjacent partition) have no entry in the halo tables; a blind
    ``searchsorted`` would silently return a wrong owner, so reject them.
    Delegates to :meth:`~repro.graph.halo.GraphPartition.halo_owners_of`,
    which the prefetcher's miss path shares.
    """
    return partition.halo_owners_of(global_ids)


class LocalKVStoreSource:
    """Rows owned by the trainer's partition, served as local memory copies."""

    name = "local-kvstore"

    def __init__(self, rpc: RPCChannel):
        self.rpc = rpc
        self._rows_served = 0
        self._calls = 0

    @property
    def feature_dim(self) -> int:
        return self.rpc.servers[self.rpc.local_part].feature_dim

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            # An empty request is not a pull: no copy, no call counted.
            return np.zeros((0, self.feature_dim), dtype=np.float32), FetchStats(source=self.name)
        rows, copy_time = self.rpc.local_pull(global_ids)
        self._rows_served += int(len(global_ids))
        self._calls += 1
        stats = FetchStats(
            source=self.name,
            num_requested=int(len(global_ids)),
            num_hits=int(len(global_ids)),
            copy_time_s=copy_time,
        )
        return rows, stats

    def nbytes(self) -> int:
        # The co-located partition server's memory is shared by every trainer
        # on the machine; this source pins nothing extra trainer-side.
        return 0

    def summary(self) -> Dict[str, float]:
        return {
            "calls": float(self._calls),
            "rows_served": float(self._rows_served),
            "server_nbytes": float(self.rpc.servers[self.rpc.local_part].nbytes()),
        }


class RemoteRPCSource:
    """Every requested row is pulled over RPC from its owning partition."""

    name = "remote-rpc"

    def __init__(self, rpc: RPCChannel, owner_of: Callable[[np.ndarray], np.ndarray]):
        self.rpc = rpc
        self.owner_of = owner_of
        self._rows_served = 0
        self._calls = 0

    @classmethod
    def from_book(cls, rpc: RPCChannel, book: PartitionBook) -> "RemoteRPCSource":
        """Route ownership lookups through the cluster's partition book."""
        return cls(rpc, owner_of=book.owner)

    @classmethod
    def from_partition(cls, rpc: RPCChannel, partition: GraphPartition) -> "RemoteRPCSource":
        """Route ownership lookups through the partition's halo tables."""
        return cls(rpc, owner_of=lambda global_ids: halo_owners(partition, global_ids))

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            # Zero rows after routing means zero RPCs: skip the pull entirely
            # so the call/request counters only ever reflect real traffic.
            dim = self.rpc.servers[self.rpc.local_part].feature_dim
            return np.zeros((0, dim), dtype=np.float32), FetchStats(source=self.name)
        owners = self.owner_of(global_ids)
        rows, rpc_time, delta = self.rpc.remote_pull(global_ids, owners)
        self._rows_served += int(len(global_ids))
        self._calls += 1
        stats = FetchStats(
            source=self.name,
            num_requested=int(len(global_ids)),
            num_misses=int(len(global_ids)),
            rpc_time_s=rpc_time,
            bytes_fetched=int(delta.bytes_fetched),
            remote_nodes_fetched=int(len(global_ids)),
        )
        return rows, stats

    def nbytes(self) -> int:
        return 0  # nothing cached trainer-side

    def summary(self) -> Dict[str, float]:
        return {"calls": float(self._calls), "rows_served": float(self._rows_served)}


class BufferedSource:
    """The MassiveGNN data path: a scored prefetch buffer in front of RPC.

    Wraps one per-trainer :class:`Prefetcher` and preserves its Algorithm 1/2
    semantics exactly — the buffer lookup, S_E decay, S_A increments, the Δ-step
    eviction rounds, and every operation count the cost model charges for.  The
    prefetcher's lifetime step counter (which drives Δ) advances once per
    ``fetch`` call, i.e. once per minibatch.
    """

    name = "buffered"

    def __init__(self, prefetcher: Prefetcher):
        self.prefetcher = prefetcher
        self._step = 0

    @property
    def tracker(self) -> HitRateTracker:
        return self.prefetcher.tracker

    def initialize(self) -> Dict[str, float]:
        """Populate the buffer (one-time RPC); returns the Fig. 8 init report."""
        return self.prefetcher.initialize().as_dict()

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        result = self.prefetcher.process_minibatch(global_ids, step=self._step)
        self._step += 1
        stats = FetchStats(
            source=self.name,
            num_requested=result.num_requested,
            num_hits=result.num_hits,
            num_misses=result.num_misses,
            rpc_time_s=result.rpc_time_s,
            bytes_fetched=int(
                result.remote_nodes_fetched * result.features.shape[1] * BYTES_PER_FEATURE
            ),
            remote_nodes_fetched=result.remote_nodes_fetched,
            lookup_nodes=result.lookup_nodes,
            scoring_nodes=result.scoring_nodes,
            eviction_round=result.eviction_round,
            nodes_evicted=result.nodes_evicted,
            nodes_replaced=result.nodes_replaced,
            buffer_capacity=result.buffer_capacity,
        )
        return result.features, stats

    def nbytes(self) -> int:
        return self.prefetcher.buffer_nbytes() + self.prefetcher.scoreboard_nbytes()

    def summary(self) -> Dict[str, float]:
        return self.prefetcher.summary()


class StaticDegreeCacheSource:
    """A top-degree halo cache populated once at initialization, never updated.

    The counterpoint to :class:`BufferedSource`: identical capacity and the
    same degree-ranked initial population, but no scoreboards and no eviction.
    Because neighbor sampling is stochastic, a static cache's hit rate decays
    over training — the phenomenon that motivates the paper's continuous
    prefetch-and-eviction scheme (Section I).
    """

    name = "static-cache"

    def __init__(self, rpc: RPCChannel, partition: GraphPartition, capacity: int):
        self.rpc = rpc
        self.partition = partition
        self.capacity = int(capacity)
        self.tracker = HitRateTracker()
        self._cached_ids = np.zeros(0, dtype=np.int64)
        self._cached_rows: Optional[np.ndarray] = None
        self._remote_nodes_fetched = 0
        self._initialized = False

    def initialize(self) -> Dict[str, float]:
        """Pull the top-degree halo rows once; returns a Fig. 8-style init report."""
        halo = self.partition.halo_global
        feature_dim = self.rpc.servers[self.rpc.local_part].feature_dim
        capacity = min(self.capacity, len(halo))
        rpc_time = 0.0
        bytes_fetched = 0
        if capacity > 0:
            order = np.argsort(-self.partition.halo_degrees(), kind="stable")
            selected = np.sort(halo[order[:capacity]])
            rows, rpc_time, delta = self.rpc.remote_pull(
                selected, halo_owners(self.partition, selected)
            )
            self._cached_ids = selected
            self._cached_rows = rows
            bytes_fetched = int(delta.bytes_fetched)
            self._remote_nodes_fetched += int(len(selected))
        else:
            self._cached_rows = np.zeros((0, feature_dim), dtype=np.float32)
        self._initialized = True
        return {
            "num_prefetched": float(len(self._cached_ids)),
            "buffer_capacity": float(capacity),
            "rpc_time_s": rpc_time,
            "bytes_fetched": float(bytes_fetched),
            "buffer_nbytes": float(self.nbytes()),
            "scoreboard_nbytes": 0.0,
            "num_halo_nodes": float(len(halo)),
        }

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        if not self._initialized:
            raise RuntimeError("StaticDegreeCacheSource.initialize() must be called before use")
        global_ids = check_1d_int_array(global_ids, "global_ids")
        feature_dim = self._cached_rows.shape[1]
        features = np.zeros((len(global_ids), feature_dim), dtype=np.float32)

        if len(self._cached_ids):
            idx = np.searchsorted(self._cached_ids, global_ids)
            idx = np.minimum(idx, len(self._cached_ids) - 1)
            hit_mask = self._cached_ids[idx] == global_ids
        else:
            hit_mask = np.zeros(len(global_ids), dtype=bool)
        hit_rows = np.nonzero(hit_mask)[0]
        miss_rows = np.nonzero(~hit_mask)[0]
        if len(hit_rows):
            features[hit_rows] = self._cached_rows[idx[hit_rows]]

        rpc_time = 0.0
        bytes_fetched = 0
        remote_fetched = 0
        if len(miss_rows):
            unique_miss = np.unique(global_ids[miss_rows])
            rows, rpc_time, delta = self.rpc.remote_pull(
                unique_miss, halo_owners(self.partition, unique_miss)
            )
            pos = np.searchsorted(unique_miss, global_ids[miss_rows])
            features[miss_rows] = rows[pos]
            bytes_fetched = int(delta.bytes_fetched)
            remote_fetched = int(len(unique_miss))
            self._remote_nodes_fetched += remote_fetched

        self.tracker.record(len(hit_rows), len(miss_rows))
        stats = FetchStats(
            source=self.name,
            num_requested=int(len(global_ids)),
            num_hits=int(len(hit_rows)),
            num_misses=int(len(miss_rows)),
            rpc_time_s=rpc_time,
            bytes_fetched=bytes_fetched,
            remote_nodes_fetched=remote_fetched,
            lookup_nodes=int(len(global_ids)),
            buffer_capacity=int(len(self._cached_ids)),
        )
        return features, stats

    def nbytes(self) -> int:
        rows = self._cached_rows.nbytes if self._cached_rows is not None else 0
        return int(rows + self._cached_ids.nbytes)

    def summary(self) -> Dict[str, float]:
        return {
            "hit_rate": self.tracker.cumulative_hit_rate,
            "buffer_capacity": float(len(self._cached_ids)),
            "buffer_nbytes": float(self.nbytes()),
            "remote_nodes_fetched": float(self._remote_nodes_fetched),
        }


# --------------------------------------------------------------------------- #
# Registry: sources constructible by name from configs / CLI / benchmarks
# --------------------------------------------------------------------------- #
@dataclass
class SourceContext:
    """Everything a feature-source factory may need for one trainer."""

    rpc: RPCChannel
    partition: GraphPartition
    num_global_nodes: int = 0
    book: Optional[PartitionBook] = None
    prefetch_config: Optional[PrefetchConfig] = None
    eviction_policy: Optional[EvictionPolicy] = None
    seed: Optional[int] = None

    def require_prefetch_config(self, source_name: str) -> PrefetchConfig:
        if self.prefetch_config is None:
            raise ValueError(f"feature source {source_name!r} requires a PrefetchConfig")
        return self.prefetch_config


FEATURE_SOURCES = Registry("feature source")


@FEATURE_SOURCES.register("local-kvstore", aliases=("local",))
def _build_local(ctx: SourceContext) -> LocalKVStoreSource:
    return LocalKVStoreSource(ctx.rpc)


@FEATURE_SOURCES.register("remote-rpc", aliases=("remote", "rpc"))
def _build_remote(ctx: SourceContext) -> RemoteRPCSource:
    if ctx.book is not None:
        return RemoteRPCSource.from_book(ctx.rpc, ctx.book)
    return RemoteRPCSource.from_partition(ctx.rpc, ctx.partition)


@FEATURE_SOURCES.register("buffered", aliases=("buffer", "prefetcher"))
def _build_buffered(ctx: SourceContext) -> BufferedSource:
    config = ctx.require_prefetch_config("buffered")
    policy = ctx.eviction_policy
    if policy is None:
        policy = build_eviction_policy(config.eviction_policy, seed=ctx.seed)
    prefetcher = Prefetcher(
        partition=ctx.partition,
        config=config,
        rpc=ctx.rpc,
        num_global_nodes=ctx.num_global_nodes,
        eviction_policy=policy,
    )
    return BufferedSource(prefetcher)


@FEATURE_SOURCES.register("static-cache", aliases=("static", "static-degree"))
def _build_static_cache(ctx: SourceContext) -> StaticDegreeCacheSource:
    config = ctx.require_prefetch_config("static-cache")
    capacity = config.buffer_capacity(ctx.partition.num_halo)
    return StaticDegreeCacheSource(ctx.rpc, ctx.partition, capacity)


def build_feature_source(name: str, ctx: SourceContext):
    """Build a registered feature source by name for one trainer's context."""
    return FEATURE_SOURCES.build(name, ctx)
