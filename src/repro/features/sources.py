"""Concrete feature sources: local KVStore, remote RPC, prefetch buffer, static cache.

Each source implements the :class:`~repro.features.source.FeatureSource`
protocol over a different data path:

* :class:`LocalKVStoreSource` — memory copies from the trainer's co-located
  partition server (the local half of both pipelines);
* :class:`RemoteRPCSource` — every row pulled from its owning partition over
  simulated RPC (the DistDGL baseline halo path, Eq. 2);
* :class:`BufferedSource` — wraps a :class:`~repro.core.prefetcher.Prefetcher`
  so Algorithms 1–2 (scored prefetch + eviction) serve the halo path, with the
  prefetcher's exact operation counts surfaced as :class:`FetchStats`;
* :class:`StaticDegreeCacheSource` — a degree-ranked cache populated once and
  never updated: the natural ablation showing why continuous eviction beats a
  static cache under stochastic neighbor sampling.  Since the tiered-cache
  subsystem landed it is a thin configuration of :class:`TieredCacheSource`
  (one tier, ``static-degree`` admission, no eviction) — the stats and
  numerics are bit-identical to the historical implementation;
* :class:`TieredCacheSource` — the general policy-pluggable path: a
  per-trainer hot :class:`~repro.cache.tier.CacheTier` optionally backed by a
  machine-shared tier, both sitting in front of the RPC channel (and hence in
  front of the :class:`~repro.distributed.rpc.BatchedRPCChannel`'s coalescing
  window when that channel is selected).

Sources are registered in :data:`FEATURE_SOURCES` and built by name from a
:class:`SourceContext` via :func:`build_feature_source`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.controller import AdaptiveCapacityController
from repro.cache.stack import TieredFeatureCache
from repro.cache.tier import CacheTier
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy, build_eviction_policy
from repro.core.metrics import HitRateTracker
from repro.core.prefetcher import Prefetcher
from repro.distributed.cost_model import BYTES_PER_FEATURE
from repro.distributed.rpc import RPCChannel
from repro.features.source import FetchStats
from repro.graph.halo import GraphPartition
from repro.graph.partition_book import PartitionBook
from repro.utils.registry import Registry
from repro.utils.validation import check_1d_int_array


def halo_degree_lookup(partition: GraphPartition) -> Callable[[np.ndarray], np.ndarray]:
    """Degree lookup over the partition's halo (non-halo ids report degree 0)."""
    halo = partition.halo_global
    degrees = partition.halo_degrees()

    def lookup(global_ids: np.ndarray) -> np.ndarray:
        out = np.zeros(len(global_ids), dtype=np.int64)
        if len(halo) and len(global_ids):
            idx = np.minimum(np.searchsorted(halo, global_ids), len(halo) - 1)
            match = halo[idx] == global_ids
            out[match] = degrees[idx[match]]
        return out

    return lookup


def halo_distance_lookup(partition: GraphPartition) -> Callable[[np.ndarray], np.ndarray]:
    """Hop distance from the partition boundary for the scorer's distance feature.

    Partitions only materialize 1-hop halos, so members of the halo table sit
    at distance 1 and anything else (ids seen only through multi-hop fanout)
    reports distance 2 — far enough that the scorer's ``1/distance`` feature
    ranks them below every direct halo neighbor.
    """
    halo = partition.halo_global

    def lookup(global_ids: np.ndarray) -> np.ndarray:
        out = np.full(len(global_ids), 2, dtype=np.int64)
        if len(halo) and len(global_ids):
            idx = np.minimum(np.searchsorted(halo, global_ids), len(halo) - 1)
            out[halo[idx] == global_ids] = 1
        return out

    return lookup


def halo_owners(partition: GraphPartition, global_ids: np.ndarray) -> np.ndarray:
    """Owning partition of each halo node, validating membership.

    Ids that are not halo neighbors of *partition* (e.g. nodes of a
    non-adjacent partition) have no entry in the halo tables; a blind
    ``searchsorted`` would silently return a wrong owner, so reject them.
    Delegates to :meth:`~repro.graph.halo.GraphPartition.halo_owners_of`,
    which the prefetcher's miss path shares.
    """
    return partition.halo_owners_of(global_ids)


class LocalKVStoreSource:
    """Rows owned by the trainer's partition, served as local memory copies."""

    name = "local-kvstore"

    def __init__(self, rpc: RPCChannel):
        self.rpc = rpc
        self._rows_served = 0
        self._calls = 0

    @property
    def feature_dim(self) -> int:
        return self.rpc.servers[self.rpc.local_part].feature_dim

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            # An empty request is not a pull: no copy, no call counted.
            return np.zeros((0, self.feature_dim), dtype=np.float32), FetchStats(source=self.name)
        rows, copy_time = self.rpc.local_pull(global_ids)
        self._rows_served += int(len(global_ids))
        self._calls += 1
        stats = FetchStats(
            source=self.name,
            num_requested=int(len(global_ids)),
            num_hits=int(len(global_ids)),
            copy_time_s=copy_time,
        )
        return rows, stats

    def nbytes(self) -> int:
        # The co-located partition server's memory is shared by every trainer
        # on the machine; this source pins nothing extra trainer-side.
        return 0

    def summary(self) -> Dict[str, float]:
        return {
            "calls": float(self._calls),
            "rows_served": float(self._rows_served),
            "server_nbytes": float(self.rpc.servers[self.rpc.local_part].nbytes()),
        }


class RemoteRPCSource:
    """Every requested row is pulled over RPC from its owning partition."""

    name = "remote-rpc"

    def __init__(self, rpc: RPCChannel, owner_of: Callable[[np.ndarray], np.ndarray]):
        self.rpc = rpc
        self.owner_of = owner_of
        self._rows_served = 0
        self._calls = 0

    @classmethod
    def from_book(cls, rpc: RPCChannel, book: PartitionBook) -> "RemoteRPCSource":
        """Route ownership lookups through the cluster's partition book."""
        return cls(rpc, owner_of=book.owner)

    @classmethod
    def from_partition(cls, rpc: RPCChannel, partition: GraphPartition) -> "RemoteRPCSource":
        """Route ownership lookups through the partition's halo tables."""
        return cls(rpc, owner_of=lambda global_ids: halo_owners(partition, global_ids))

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            # Zero rows after routing means zero RPCs: skip the pull entirely
            # so the call/request counters only ever reflect real traffic.
            dim = self.rpc.servers[self.rpc.local_part].feature_dim
            return np.zeros((0, dim), dtype=np.float32), FetchStats(source=self.name)
        owners = self.owner_of(global_ids)
        rows, rpc_time, delta = self.rpc.remote_pull(global_ids, owners)
        self._rows_served += int(len(global_ids))
        self._calls += 1
        stats = FetchStats(
            source=self.name,
            num_requested=int(len(global_ids)),
            num_misses=int(len(global_ids)),
            rpc_time_s=rpc_time,
            bytes_fetched=int(delta.bytes_fetched),
            remote_nodes_fetched=int(len(global_ids)),
        )
        return rows, stats

    def nbytes(self) -> int:
        return 0  # nothing cached trainer-side

    def summary(self) -> Dict[str, float]:
        return {"calls": float(self._calls), "rows_served": float(self._rows_served)}


class BufferedSource:
    """The MassiveGNN data path: a scored prefetch buffer in front of RPC.

    Wraps one per-trainer :class:`Prefetcher` and preserves its Algorithm 1/2
    semantics exactly — the buffer lookup, S_E decay, S_A increments, the Δ-step
    eviction rounds, and every operation count the cost model charges for.  The
    prefetcher's lifetime step counter (which drives Δ) advances once per
    ``fetch`` call, i.e. once per minibatch.
    """

    name = "buffered"

    def __init__(self, prefetcher: Prefetcher):
        self.prefetcher = prefetcher
        self._step = 0

    @property
    def tracker(self) -> HitRateTracker:
        return self.prefetcher.tracker

    def initialize(self) -> Dict[str, float]:
        """Populate the buffer (one-time RPC); returns the Fig. 8 init report."""
        return self.prefetcher.initialize().as_dict()

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        result = self.prefetcher.process_minibatch(global_ids, step=self._step)
        self._step += 1
        tier_counters: Dict[str, float] = {}
        if self.prefetcher.shared_tier is not None:
            tier_counters = {
                "shared.hits": float(result.shared_tier_hits),
                "shared.misses": float(result.shared_tier_misses),
            }
        stats = FetchStats(
            source=self.name,
            num_requested=result.num_requested,
            num_hits=result.num_hits,
            num_misses=result.num_misses,
            rpc_time_s=result.rpc_time_s,
            bytes_fetched=int(
                result.remote_nodes_fetched * result.features.shape[1] * BYTES_PER_FEATURE
            ),
            remote_nodes_fetched=result.remote_nodes_fetched,
            lookup_nodes=result.lookup_nodes,
            scoring_nodes=result.scoring_nodes,
            eviction_round=result.eviction_round,
            nodes_evicted=result.nodes_evicted,
            nodes_replaced=result.nodes_replaced,
            buffer_capacity=result.buffer_capacity,
            tier_counters=tier_counters,
        )
        return result.features, stats

    def nbytes(self) -> int:
        return self.prefetcher.buffer_nbytes() + self.prefetcher.scoreboard_nbytes()

    def tier_summary(self) -> Dict[str, float]:
        """Shared-tier counters when the miss path routes through one."""
        tier = self.prefetcher.shared_tier
        if tier is None:
            return {}
        return {f"tier.shared.{key}": float(value) for key, value in tier.summary().items()}

    def summary(self) -> Dict[str, float]:
        out = self.prefetcher.summary()
        out.update(self.tier_summary())
        return out


class TieredCacheSource:
    """Halo features served through the tiered cache stack (``repro.cache``).

    A per-trainer **hot** :class:`~repro.cache.tier.CacheTier` — preloaded
    with the partition's top-degree halo rows, exactly like the historical
    static cache — optionally backed by a machine-shared tier, both in front
    of the RPC channel (and hence in front of the
    :class:`~repro.distributed.rpc.BatchedRPCChannel`'s coalescing window
    when that channel is selected).  Admission/eviction behavior is whatever
    the :class:`~repro.cache.config.CacheConfig` names; with the default
    config (one tier, ``static-degree`` admission, no eviction) the source is
    bit-identical to the pre-tier :class:`StaticDegreeCacheSource`, which the
    differential tests pin.

    ``capacity`` is the trainer's total row budget; with two tiers it is
    split by ``cache_config.hot_fraction`` between the hot tier and this
    trainer's contribution to the shared tier, and the adaptive controller
    (``cache_config.adaptive``) re-splits it at epoch boundaries from
    observed per-tier hit rates.
    """

    name = "tiered-cache"

    def __init__(
        self,
        rpc: RPCChannel,
        partition: GraphPartition,
        capacity: int,
        cache_config: Optional[CacheConfig] = None,
        shared_tier: Optional[CacheTier] = None,
    ):
        self.rpc = rpc
        self.partition = partition
        self.capacity = int(capacity)
        self.cache_config = cache_config or CacheConfig()
        self.tracker = HitRateTracker()
        self._remote_nodes_fetched = 0
        self._step = 0
        self._initialized = False

        degree_of = halo_degree_lookup(partition)
        distance_of = halo_distance_lookup(partition)
        feature_dim = rpc.servers[rpc.local_part].feature_dim
        hot_capacity, shared_contribution = self.cache_config.split_budget(self.capacity)
        self.hot_tier = CacheTier(
            "hot",
            hot_capacity,
            feature_dim,
            admission=self.cache_config.admission,
            eviction=self.cache_config.eviction,
            degree_of=degree_of,
            scorer=self.cache_config.scorer,
            distance_of=distance_of,
            record_decisions=self.cache_config.record_decisions,
        )
        tiers: List[CacheTier] = [self.hot_tier]
        self.shared_tier: Optional[CacheTier] = None
        self.controller: Optional[AdaptiveCapacityController] = None
        if self.cache_config.tiers >= 2:
            if shared_tier is None:
                shared_tier = CacheTier(
                    "shared",
                    0,
                    feature_dim,
                    admission=self.cache_config.shared_admission,
                    eviction=self.cache_config.shared_eviction,
                    degree_of=degree_of,
                    scorer=self.cache_config.scorer,
                    distance_of=distance_of,
                    record_decisions=self.cache_config.record_decisions,
                )
            # Each trainer funds its share of the machine tier; the tier's
            # capacity is the sum of its trainers' contributions.
            shared_tier.resize(shared_tier.capacity + shared_contribution)
            self.shared_tier = shared_tier
            tiers.append(shared_tier)
            if self.cache_config.adaptive:
                self.controller = AdaptiveCapacityController(
                    self.hot_tier,
                    shared_tier,
                    total_budget=self.capacity,
                    shared_contribution=shared_contribution,
                    min_tier_fraction=self.cache_config.min_tier_fraction,
                    max_shift_fraction=self.cache_config.max_shift_fraction,
                )
        self.stack = TieredFeatureCache(tiers, self._fetch_missing, feature_dim)

    # ------------------------------------------------------------------ #
    def initialize(self) -> Dict[str, float]:
        """Preload the hot tier with the top-degree halo rows (one-time RPC)."""
        halo = self.partition.halo_global
        capacity = min(self.hot_tier.capacity, len(halo))
        rpc_time = 0.0
        bytes_fetched = 0
        if capacity > 0:
            order = np.argsort(-self.partition.halo_degrees(), kind="stable")
            selected = np.sort(halo[order[:capacity]])
            rows, rpc_time, delta = self.rpc.remote_pull(
                selected, halo_owners(self.partition, selected)
            )
            self.hot_tier.seed(selected, rows)
            bytes_fetched = int(delta.bytes_fetched)
            self._remote_nodes_fetched += int(len(selected))
        self._initialized = True
        return {
            "num_prefetched": float(self.hot_tier.size),
            "buffer_capacity": float(capacity),
            "rpc_time_s": rpc_time,
            "bytes_fetched": float(bytes_fetched),
            "buffer_nbytes": float(self.nbytes()),
            "scoreboard_nbytes": 0.0,
            "num_halo_nodes": float(len(halo)),
        }

    def fetch(self, global_ids: np.ndarray) -> Tuple[np.ndarray, FetchStats]:
        if not self._initialized:
            raise RuntimeError(f"{type(self).__name__}.initialize() must be called before use")
        global_ids = check_1d_int_array(global_ids, "global_ids")
        features, result = self.stack.fetch(global_ids, self._step)
        self._step += 1
        self._remote_nodes_fetched += result.fetched_rows
        self.tracker.record(result.num_hits, result.num_misses)
        stats = FetchStats(
            source=self.name,
            num_requested=result.num_requested,
            num_hits=result.num_hits,
            num_misses=result.num_misses,
            rpc_time_s=result.fetch_time_s,
            bytes_fetched=result.bytes_fetched,
            remote_nodes_fetched=result.fetched_rows,
            lookup_nodes=result.lookup_nodes,
            buffer_capacity=self.stack.total_resident,
            tier_counters=(
                {} if self.cache_config.is_default_single_tier else result.tier_counters
            ),
        )
        return features, stats

    def end_epoch(self) -> None:
        """Epoch boundary: re-split tier budgets and step the online scorers."""
        if self.controller is not None:
            self.controller.end_epoch(self._step)
        self.hot_tier.end_epoch()
        if self.shared_tier is not None:
            self.shared_tier.end_epoch()

    # ------------------------------------------------------------------ #
    def _fetch_missing(self, global_ids: np.ndarray) -> Tuple[np.ndarray, float, int]:
        """Miss handler behind the stack: one owner-routed RPC pull."""
        rows, rpc_time, delta = self.rpc.remote_pull(
            global_ids, halo_owners(self.partition, global_ids)
        )
        return rows, rpc_time, int(delta.bytes_fetched)

    def nbytes(self) -> int:
        # The shared tier is machine-level (funded by every trainer on the
        # machine); reporting the full stack here reads as "bytes reachable
        # from this trainer", and summaries average level-like keys.
        return self.stack.nbytes()

    def tier_summary(self) -> Dict[str, float]:
        """Cumulative per-tier counters (``tier.{name}.{counter}`` keys)."""
        if self.cache_config.is_default_single_tier:
            return {}
        out = self.stack.summary()
        if self.controller is not None:
            out["controller.adjustments"] = float(len(self.controller.history))
            out["controller.hot_capacity"] = float(self.hot_tier.capacity)
        return out

    def summary(self) -> Dict[str, float]:
        out = {
            "hit_rate": self.tracker.cumulative_hit_rate,
            "buffer_capacity": float(self.stack.total_resident),
            "buffer_nbytes": float(self.nbytes()),
            "remote_nodes_fetched": float(self._remote_nodes_fetched),
        }
        out.update(self.tier_summary())
        return out


class StaticDegreeCacheSource(TieredCacheSource):
    """A top-degree halo cache populated once at initialization, never updated.

    The counterpoint to :class:`BufferedSource`: identical capacity and the
    same degree-ranked initial population, but no scoreboards and no eviction.
    Because neighbor sampling is stochastic, a static cache's hit rate decays
    over training — the phenomenon that motivates the paper's continuous
    prefetch-and-eviction scheme (Section I).

    Implemented as the default single-tier configuration of
    :class:`TieredCacheSource` (``static-degree`` admission, no eviction);
    the regression tests pin its stats and numerics to the historical
    stand-alone implementation.
    """

    name = "static-cache"

    def __init__(self, rpc: RPCChannel, partition: GraphPartition, capacity: int):
        super().__init__(rpc, partition, capacity, cache_config=CacheConfig())

    @property
    def _cached_ids(self) -> np.ndarray:
        """Resident ids, ascending (legacy introspection some tests use)."""
        return self.hot_tier.resident_ids


# --------------------------------------------------------------------------- #
# Registry: sources constructible by name from configs / CLI / benchmarks
# --------------------------------------------------------------------------- #
@dataclass
class SourceContext:
    """Everything a feature-source factory may need for one trainer.

    ``cache_config`` parameterizes the tiered cache sources; ``shared_tier``
    is the machine-shared :class:`~repro.cache.tier.CacheTier` owned by the
    cluster (one per machine) that two-tier stacks compose behind the hot
    tier — every trainer on the machine passes the same instance.
    """

    rpc: RPCChannel
    partition: GraphPartition
    num_global_nodes: int = 0
    book: Optional[PartitionBook] = None
    prefetch_config: Optional[PrefetchConfig] = None
    eviction_policy: Optional[EvictionPolicy] = None
    seed: Optional[int] = None
    cache_config: Optional[CacheConfig] = None
    shared_tier: Optional[CacheTier] = None

    def require_prefetch_config(self, source_name: str) -> PrefetchConfig:
        if self.prefetch_config is None:
            raise ValueError(f"feature source {source_name!r} requires a PrefetchConfig")
        return self.prefetch_config


FEATURE_SOURCES = Registry("feature source")


@FEATURE_SOURCES.register("local-kvstore", aliases=("local",))
def _build_local(ctx: SourceContext) -> LocalKVStoreSource:
    return LocalKVStoreSource(ctx.rpc)


@FEATURE_SOURCES.register("remote-rpc", aliases=("remote", "rpc"))
def _build_remote(ctx: SourceContext) -> RemoteRPCSource:
    if ctx.book is not None:
        return RemoteRPCSource.from_book(ctx.rpc, ctx.book)
    return RemoteRPCSource.from_partition(ctx.rpc, ctx.partition)


@FEATURE_SOURCES.register("buffered", aliases=("buffer", "prefetcher"))
def _build_buffered(ctx: SourceContext) -> BufferedSource:
    config = ctx.require_prefetch_config("buffered")
    policy = ctx.eviction_policy
    if policy is None:
        policy = build_eviction_policy(config.eviction_policy, seed=ctx.seed)
    # A two-tier cache config threads the machine-shared tier into the
    # prefetcher's miss path; the default (None / single tier) keeps the
    # golden-pinned Algorithm 2 accounting bit-identical.  The trainer's row
    # budget is split like the tiered source's: the buffer keeps
    # ``hot_fraction`` of it and the rest funds the machine-shared tier, so
    # total resident memory matches the single-tier configuration.
    shared_tier = None
    if ctx.cache_config is not None and ctx.cache_config.tiers >= 2:
        if ctx.cache_config.adaptive:
            raise ValueError(
                "adaptive capacity control is not supported on the prefetch "
                "(buffered) data path — the buffer is not a resizable cache "
                "tier; use the 'tiered-cache' pipeline instead"
            )
        shared_tier = ctx.shared_tier
        if shared_tier is None:
            # Parity with TieredCacheSource: a two-tier config without a
            # cluster-owned tier still gets a (private) shared tier instead
            # of silently degrading to the single-tier path.
            shared_tier = CacheTier(
                "shared",
                0,
                ctx.rpc.servers[ctx.rpc.local_part].feature_dim,
                admission=ctx.cache_config.shared_admission,
                eviction=ctx.cache_config.shared_eviction,
                degree_of=halo_degree_lookup(ctx.partition),
                scorer=ctx.cache_config.scorer,
                distance_of=halo_distance_lookup(ctx.partition),
                record_decisions=ctx.cache_config.record_decisions,
            )
        num_halo = ctx.partition.num_halo
        budget = config.buffer_capacity(num_halo)
        hot_capacity, shared_contribution = ctx.cache_config.split_budget(budget)
        if num_halo > 0 and budget > 0:
            config = dataclasses.replace(
                config, halo_fraction=min(1.0, hot_capacity / num_halo)
            )
        shared_tier.resize(shared_tier.capacity + shared_contribution)
    prefetcher = Prefetcher(
        partition=ctx.partition,
        config=config,
        rpc=ctx.rpc,
        num_global_nodes=ctx.num_global_nodes,
        eviction_policy=policy,
        shared_tier=shared_tier,
    )
    return BufferedSource(prefetcher)


@FEATURE_SOURCES.register("static-cache", aliases=("static", "static-degree"))
def _build_static_cache(ctx: SourceContext) -> StaticDegreeCacheSource:
    config = ctx.require_prefetch_config("static-cache")
    capacity = config.buffer_capacity(ctx.partition.num_halo)
    return StaticDegreeCacheSource(ctx.rpc, ctx.partition, capacity)


@FEATURE_SOURCES.register("tiered-cache", aliases=("tiered", "tiers"))
def _build_tiered_cache(ctx: SourceContext) -> TieredCacheSource:
    config = ctx.require_prefetch_config("tiered-cache")
    capacity = config.buffer_capacity(ctx.partition.num_halo)
    return TieredCacheSource(
        ctx.rpc,
        ctx.partition,
        capacity,
        cache_config=ctx.cache_config,
        shared_tier=ctx.shared_tier,
    )


def build_feature_source(name: str, ctx: SourceContext):
    """Build a registered feature source by name for one trainer's context."""
    return FEATURE_SOURCES.build(name, ctx)
