"""Random number generator helpers.

All stochastic components in the library (graph generators, samplers,
partitioners, model initialization) accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  These helpers normalize that
input and derive independent child generators for parallel workers so that
simulated trainers remain reproducible and decorrelated.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` seed, an existing
        ``Generator`` (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive *count* independent generators from a single seed.

    Used to give each simulated trainer / sampler its own stream so that the
    per-trainer sampling order does not depend on the number of trainers
    iterating concurrently.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the underlying bit generator state.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: SeedLike, *salts: Iterable[int]) -> int:
    """Deterministically derive an integer seed from *seed* and salt values."""
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    mixed = np.random.SeedSequence([base, *[int(s) for s in salts]])
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def spawn_worker_seed(seed: SeedLike, rank: int) -> int:
    """Derive the seed for worker-process *rank* via ``SeedSequence.spawn``.

    Spawned children are statistically independent by construction, unlike
    ``seed + rank`` arithmetic where adjacent ranks land on adjacent states of
    the same stream.  The derivation is keyed by rank: spawning ``rank + 1``
    children and taking the last yields the same seed regardless of how many
    workers exist in total, so a rank's stream is stable across pool sizes.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(base)
    child = seq.spawn(rank + 1)[rank]
    return int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def optional_shuffle(
    array: np.ndarray, rng: Optional[np.random.Generator], inplace: bool = False
) -> np.ndarray:
    """Shuffle *array* with *rng* when provided, otherwise return it unchanged."""
    if rng is None:
        return array
    out = array if inplace else array.copy()
    rng.shuffle(out)
    return out
