"""Shared utilities: RNG handling, validation helpers, and lightweight logging."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_1d_int_array,
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_1d_int_array",
    "check_fraction",
    "check_positive",
    "check_probability",
]
