"""String-keyed factory registries.

Eviction policies, feature sources, and minibatch pipelines are all selected
by name — from :class:`~repro.core.config.PrefetchConfig` fields, CLI flags,
and benchmark tables.  :class:`Registry` is the one mechanism behind those
lookups: factories register under a canonical name (plus optional aliases) and
are built with ``registry.build(name, **kwargs)``.  Unknown names raise a
``ValueError`` that lists every valid choice, so a typo in a config or CLI
flag is immediately diagnosable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence


class Registry:
    """A case-insensitive name -> factory mapping with aliases.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered (``"eviction
        policy"``, ``"feature source"``, ...); used in error messages.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        aliases: Sequence[str] = (),
    ):
        """Register *factory* under *name* (decorator form when factory is omitted)."""

        def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
            key = self._normalize(name)
            if key in self._factories or key in self._aliases:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._factories[key] = fn
            for alias in aliases:
                alias_key = self._normalize(alias)
                if alias_key in self._factories or alias_key in self._aliases:
                    raise ValueError(f"{self.kind} alias {alias!r} is already registered")
                self._aliases[alias_key] = key
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    # ------------------------------------------------------------------ #
    def resolve(self, name: str) -> str:
        """Canonical name for *name* (follows aliases); ValueError when unknown."""
        key = self._normalize(name)
        key = self._aliases.get(key, key)
        if key not in self._factories:
            valid = ", ".join(sorted(self._factories))
            raise ValueError(f"unknown {self.kind} {name!r}; valid names: {valid}")
        return key

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under *name* (or one of its aliases)."""
        return self._factories[self.resolve(name)]

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the factory registered under *name*."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._factories)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = self._normalize(name)
        return key in self._factories or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise ValueError("registry names must be non-empty strings")
        return name.strip().lower()
