"""Input validation helpers used across the library.

The distributed-training code paths move a lot of integer index arrays around
(global node ids, local ids, halo ids).  Validating shapes and dtypes at module
boundaries keeps errors close to their source instead of surfacing as cryptic
NumPy broadcasting failures deep inside the simulation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

Number = Union[int, float]


def check_positive(value: Number, name: str, *, allow_zero: bool = False) -> Number:
    """Require a (strictly) positive scalar."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    else:
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_fraction(value: float, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Require ``value`` to be a fraction in [0, 1] (bounds configurable)."""
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with inclusive bounds."""
    return check_fraction(value, name)


def check_1d_int_array(
    array: Union[np.ndarray, Sequence[int]],
    name: str,
    *,
    max_value: Optional[int] = None,
    allow_empty: bool = True,
) -> np.ndarray:
    """Coerce *array* to a 1-D int64 NumPy array and validate its range."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        if not allow_empty:
            raise ValueError(f"{name} must not be empty")
        return arr.astype(np.int64)
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0:
        raise ValueError(f"{name} contains negative indices")
    if max_value is not None and arr.max() >= max_value:
        raise ValueError(
            f"{name} contains index {int(arr.max())} >= allowed maximum {max_value}"
        )
    return arr


def check_2d_float_array(array: np.ndarray, name: str, *, columns: Optional[int] = None) -> np.ndarray:
    """Coerce *array* to a 2-D float32 array, optionally checking column count."""
    arr = np.asarray(array, dtype=np.float32)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if columns is not None and arr.shape[1] != columns:
        raise ValueError(f"{name} must have {columns} columns, got {arr.shape[1]}")
    return arr


def check_same_length(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Require two arrays to have equal leading dimension."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} vs {len(b)}"
        )
