"""Minimal structured logging for simulations and benchmark harnesses.

The benchmark scripts print paper-style tables; the training engine emits
per-epoch progress lines.  A tiny wrapper around :mod:`logging` keeps the
output format consistent without pulling in heavier dependencies.
"""

from __future__ import annotations

import logging
import sys
from typing import Iterable, List, Sequence

_FORMAT = "[%(levelname)s %(name)s] %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a logger configured to emit to stderr once (idempotent)."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_fmt: str = "{:.4g}") -> str:
    """Render an ASCII table (used by benchmark harnesses to mimic paper tables)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
