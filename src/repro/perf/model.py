"""Analytical performance model (Section IV-C, Equations 2–7).

The paper derives when the prefetching scheme helps: per-minibatch baseline
time is sampling + feature movement + DDP training (Eq. 2); with prefetching
the next minibatch's preparation overlaps with the current minibatch's DDP
training (Eqs. 4–5), so steady-state time is ``max(t_prepare, t_DDP)`` and the
potential improvement factor is roughly ``t_RPC / t_DDP + 1`` (Eq. 6).  The
compounding cost of frequent scoreboard maintenance is modelled by Eq. 7.

These functions are used three ways in this repository: (1) directly, to
predict speedups from measured component times; (2) as an oracle the
simulated training engine is validated against in the tests; and (3) by the
trade-off analysis in :mod:`repro.perf.tradeoffs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class StepComponents:
    """Per-minibatch component times (seconds) entering the model."""

    t_sampling: float = 0.0
    t_rpc: float = 0.0
    t_copy: float = 0.0
    t_ddp: float = 0.0
    t_lookup: float = 0.0
    t_scoring: float = 0.0

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


def baseline_step_time(c: StepComponents) -> float:
    """Eq. 2: ``T_baseline = t_sampling + max(t_RPC, t_copy) + t_DDP``."""
    c.validate()
    return c.t_sampling + max(c.t_rpc, c.t_copy) + c.t_ddp


def prepare_time(c: StepComponents) -> float:
    """Eq. 3: next-minibatch preparation time with prefetching.

    ``t_prepare = t_sampling + t_lookup + max(t_scoring, max(t_RPC, t_copy))``
    — the scoreboard update is overlapped with the RPC fetch of missed nodes.
    """
    c.validate()
    return c.t_sampling + c.t_lookup + max(c.t_scoring, max(c.t_rpc, c.t_copy))


def prefetch_first_step_time(c: StepComponents) -> float:
    """Eq. 4: the first minibatch pays its own preparation plus the overlap term."""
    t_prep = prepare_time(c)
    return t_prep + max(t_prep, c.t_ddp)


def prefetch_steady_step_time(c: StepComponents) -> float:
    """Eq. 5: steady state is the max of preparation (next batch) and training (current)."""
    return max(prepare_time(c), c.t_ddp)


def total_time(c: StepComponents, num_steps: int, *, prefetch: bool) -> float:
    """Total time over *num_steps* minibatches for either pipeline."""
    if num_steps <= 0:
        return 0.0
    if not prefetch:
        return num_steps * baseline_step_time(c)
    if num_steps == 1:
        return prefetch_first_step_time(c)
    return prefetch_first_step_time(c) + (num_steps - 1) * prefetch_steady_step_time(c)


def improvement_factor(c: StepComponents) -> float:
    """Eq. 6: approximate attainable speedup ``t_RPC / t_DDP + 1``.

    Valid in the regime the paper targets (communication on the critical
    path, perfect overlap); the exact ratio is :func:`predicted_speedup`.
    """
    if c.t_ddp <= 0:
        raise ValueError("t_ddp must be positive for the improvement factor")
    return c.t_rpc / c.t_ddp + 1.0


def predicted_speedup(c: StepComponents, num_steps: int = 1000) -> float:
    """Exact model-level speedup ``T_baseline / T_prefetch`` over many steps."""
    baseline = total_time(c, num_steps, prefetch=False)
    prefetched = total_time(c, num_steps, prefetch=True)
    if prefetched <= 0:
        return float("inf")
    return baseline / prefetched


def is_perfect_overlap(c: StepComponents) -> bool:
    """True when minibatch preparation hides entirely behind DDP training."""
    return prepare_time(c) <= c.t_ddp


def overlap_efficiency(c: StepComponents) -> float:
    """Fraction of preparation time hidden behind training (1.0 = perfect overlap).

    Matches the Section V-B2 definition: the complement of the share of the
    steady-state step spent stalled waiting for the next minibatch.
    """
    t_prep = prepare_time(c)
    if t_prep <= 0:
        return 1.0
    hidden = min(t_prep, c.t_ddp)
    return hidden / t_prep


def scoring_overhead_compound(
    t_prepare_present: float,
    scoring_fraction: float,
    num_epochs: int,
    delta: int,
) -> float:
    """Eq. 7: compounded preparation time after repeated score maintenance.

    ``t_prepare(future) = t_prepare(present) * (1 + scoring_fraction)^(epochs/delta)``
    where ``scoring_fraction`` expresses the per-interval scoring cost as a
    fraction of the preparation time (the paper's example uses 10%).
    """
    if t_prepare_present < 0:
        raise ValueError("t_prepare_present must be non-negative")
    if scoring_fraction < 0:
        raise ValueError("scoring_fraction must be non-negative")
    if delta <= 0:
        raise ValueError("delta must be positive")
    periods = num_epochs / delta
    return t_prepare_present * (1.0 + scoring_fraction) ** periods


def communication_stall_time(t_rpc: float, t_copy: float) -> float:
    """Eq. 9: trainer stall attributable to communication, ``t_RPC − t_copy`` (≥ 0)."""
    return max(0.0, t_rpc - t_copy)


def components_from_breakdown(breakdown: Dict[str, float], num_steps: int) -> StepComponents:
    """Average per-step components from a simulated-clock breakdown ledger."""
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    def get(key: str) -> float:
        return breakdown.get(key, 0.0) / num_steps
    return StepComponents(
        t_sampling=get("sampling"),
        t_rpc=get("rpc"),
        t_copy=get("copy"),
        t_ddp=get("ddp") + get("allreduce"),
        t_lookup=get("lookup"),
        t_scoring=get("scoring") + get("eviction"),
    )
