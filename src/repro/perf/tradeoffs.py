"""Trade-off analysis of the decay factor γ and eviction interval Δ (Fig. 5).

The paper frames the parameter space as four quadrants:

=================  ==========================  =====================================
quadrant           (γ, Δ) regime               expected behaviour
=================  ==========================  =====================================
low decay/short    γ → 1, small Δ              hit-rate stagnation + lookup overhead
high decay/short   γ → 0, small Δ              hit-rate swings, useful nodes evicted
high decay/long    γ → 0, large Δ              delayed evictions, possible hit drops
low decay/long     γ → 1, large Δ              best: steady hit-rate growth, low overhead
=================  ==========================  =====================================

:func:`classify_quadrant` maps a configuration to its quadrant and
:func:`expected_behaviour` returns the paper's qualitative prediction, which
the sweep benchmarks compare against measured hit rates/times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import PrefetchConfig


# Boundaries: the paper calls γ >= 0.9 "low decay"; Δ of 128 or more is "long"
# relative to the 16–1024 range it sweeps.
LOW_DECAY_THRESHOLD = 0.9
LONG_INTERVAL_THRESHOLD = 128


@dataclass(frozen=True)
class QuadrantInfo:
    """One quadrant of the Fig. 5 trade-off space."""

    name: str
    low_decay: bool
    long_interval: bool
    expected: str
    overhead: str


QUADRANTS: Dict[str, QuadrantInfo] = {
    "low-decay/short-interval": QuadrantInfo(
        name="low-decay/short-interval",
        low_decay=True,
        long_interval=False,
        expected="hit-rate stagnation (few nodes evicted per frequent round)",
        overhead="high (frequent eviction inspection)",
    ),
    "high-decay/short-interval": QuadrantInfo(
        name="high-decay/short-interval",
        low_decay=False,
        long_interval=False,
        expected="hit-rate swings (useful nodes evicted aggressively)",
        overhead="high (frequent eviction inspection)",
    ),
    "high-decay/long-interval": QuadrantInfo(
        name="high-decay/long-interval",
        low_decay=False,
        long_interval=True,
        expected="delayed evictions, possible hit-rate drops",
        overhead="low",
    ),
    "low-decay/long-interval": QuadrantInfo(
        name="low-decay/long-interval",
        low_decay=True,
        long_interval=True,
        expected="consistent hit-rate growth (recommended regime)",
        overhead="low",
    ),
}


def classify_quadrant(gamma: float, delta: int) -> QuadrantInfo:
    """Map (γ, Δ) to its Fig. 5 quadrant."""
    low_decay = gamma >= LOW_DECAY_THRESHOLD
    long_interval = delta >= LONG_INTERVAL_THRESHOLD
    for info in QUADRANTS.values():
        if info.low_decay == low_decay and info.long_interval == long_interval:
            return info
    raise RuntimeError("unreachable: quadrant table covers all combinations")


def classify_config(config: PrefetchConfig) -> QuadrantInfo:
    """Quadrant of a :class:`PrefetchConfig`."""
    return classify_quadrant(config.gamma, config.delta)


def expected_behaviour(gamma: float, delta: int) -> str:
    return classify_quadrant(gamma, delta).expected


def quadrant_configs(
    halo_fraction: float = 0.25,
    low_gamma: float = 0.5,
    high_gamma: float = 0.995,
    short_delta: int = 16,
    long_delta: int = 512,
) -> Dict[str, PrefetchConfig]:
    """One representative :class:`PrefetchConfig` per quadrant (for Fig. 5 benches)."""
    return {
        "low-decay/short-interval": PrefetchConfig(
            halo_fraction=halo_fraction, gamma=high_gamma, delta=short_delta
        ),
        "high-decay/short-interval": PrefetchConfig(
            halo_fraction=halo_fraction, gamma=low_gamma, delta=short_delta
        ),
        "high-decay/long-interval": PrefetchConfig(
            halo_fraction=halo_fraction, gamma=low_gamma, delta=long_delta
        ),
        "low-decay/long-interval": PrefetchConfig(
            halo_fraction=halo_fraction, gamma=high_gamma, delta=long_delta
        ),
    }


def rank_quadrants_by_hit_rate(results: Dict[str, float]) -> List[str]:
    """Order quadrant names from best to worst by measured hit rate."""
    return sorted(results, key=lambda name: results[name], reverse=True)


def eviction_rounds_per_epoch(num_minibatches: int, delta: int) -> int:
    """How many eviction rounds a trainer performs per epoch."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return max(0, num_minibatches // delta)
