"""MassiveGNN reproduction: prefetching and eviction for distributed GNN training.

This package reproduces *MassiveGNN: Efficient Training via Prefetching for
Massively Connected Distributed Graphs* (CLUSTER 2024) in pure Python/NumPy:

* :mod:`repro.core` — the paper's contribution: the parameterized continuous
  prefetch-and-eviction scheme (buffer, scoreboards, eviction policies);
* :mod:`repro.graph` — CSR graphs, synthetic OGB-style datasets, METIS-like
  partitioning, halo construction;
* :mod:`repro.sampling` — fan-out neighbor sampling and distributed data loading;
* :mod:`repro.distributed` — the DistDGL-like substrate (KVStore, RPC with a
  cost model, simulated cluster, DDP allreduce);
* :mod:`repro.events` — the discrete-event backend: deterministic event
  loop, gradient-sync policy registry, seeded failure/congestion schedules;
* :mod:`repro.nn` — NumPy GraphSAGE and GAT with manual backprop;
* :mod:`repro.training` — baseline and prefetch-enabled training pipelines,
  the cluster execution engines (lockstep and event-driven, selected from
  :data:`~repro.training.engines.ENGINES`), sweeps, memory profiling;
* :mod:`repro.scenarios` — named cluster workloads (uniform, skewed
  partitions, straggler machines, hot halo, cache stress, asynchrony/failure/
  congestion) for benchmarks and the CLI;
* :mod:`repro.perf` — the analytical performance model (Eqs. 2–7) and the
  (γ, Δ) trade-off analysis.

Quickstart::

    from repro import load_dataset, ClusterConfig, TrainConfig, PrefetchConfig
    from repro.training import compare_baseline_and_prefetch

    dataset = load_dataset("products", scale=0.25, seed=0)
    baseline, prefetch = compare_baseline_and_prefetch(
        dataset,
        prefetch_config=PrefetchConfig(halo_fraction=0.25, gamma=0.995, delta=64),
        cluster_config=ClusterConfig(num_machines=2, trainers_per_machine=2, batch_size=256),
        train_config=TrainConfig(epochs=3),
    )
    print("improvement %:", prefetch.improvement_percent_vs(baseline))
"""

from repro.core import PrefetchConfig, Prefetcher
from repro.distributed import ClusterConfig, CostModel, SimCluster
from repro.features import (
    FEATURE_SOURCES,
    BufferedSource,
    FeatureSource,
    FeatureStore,
    FetchResult,
    FetchStats,
    LocalKVStoreSource,
    RemoteRPCSource,
    SourceContext,
    StaticDegreeCacheSource,
    build_feature_source,
)
from repro.graph import GraphDataset, available_datasets, load_dataset
from repro.sampling import (
    BatchStage,
    FetchFeatureStage,
    MiniBatchPipeline,
    PipelineBatch,
    SampleStage,
    SeedStage,
)
from repro.scenarios import (
    SCENARIOS,
    ClusterScenario,
    ClusterWorkload,
    available_scenarios,
    build_scenario,
)
from repro.training import (
    ENGINES,
    PIPELINES,
    AsyncClusterEngine,
    ClusterEngine,
    ClusterReport,
    TrainConfig,
    TrainingReport,
    build_pipeline,
    compare_baseline_and_prefetch,
    train_baseline,
    train_massive,
    train_with_pipeline,
)

__version__ = "1.1.0"

__all__ = [
    "PrefetchConfig",
    "Prefetcher",
    "ClusterConfig",
    "CostModel",
    "SimCluster",
    "FEATURE_SOURCES",
    "BufferedSource",
    "FeatureSource",
    "FeatureStore",
    "FetchResult",
    "FetchStats",
    "LocalKVStoreSource",
    "RemoteRPCSource",
    "SourceContext",
    "StaticDegreeCacheSource",
    "build_feature_source",
    "GraphDataset",
    "available_datasets",
    "load_dataset",
    "BatchStage",
    "FetchFeatureStage",
    "MiniBatchPipeline",
    "PipelineBatch",
    "SampleStage",
    "SeedStage",
    "PIPELINES",
    "SCENARIOS",
    "ClusterScenario",
    "ClusterWorkload",
    "available_scenarios",
    "build_scenario",
    "ENGINES",
    "AsyncClusterEngine",
    "ClusterEngine",
    "ClusterReport",
    "TrainConfig",
    "TrainingReport",
    "build_pipeline",
    "compare_baseline_and_prefetch",
    "train_baseline",
    "train_massive",
    "train_with_pipeline",
    "__version__",
]
