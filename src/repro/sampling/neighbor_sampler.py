"""Fan-out neighbor sampling (DGL ``NeighborSampler`` analog).

Given seed nodes and a per-layer fan-out list (the paper uses ``{10, 25}`` for
a 2-layer GraphSAGE), the sampler walks the partition's *local* graph structure
outward layer by layer, uniformly sampling at most ``fanout`` neighbors per
node without replacement.  Halo nodes are legitimate sampling targets (their
structure is present locally) but have no outgoing edges in the local CSR, so
the frontier naturally truncates at the partition boundary — the same
behaviour as DistDGL's local sampling with halo nodes.

The sampler is deliberately stochastic and stateless across minibatches: this
non-determinism is exactly why a static cache is insufficient and a scored
prefetch buffer (the paper's contribution) is needed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.halo import GraphPartition
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_1d_int_array


class NeighborSampler:
    """Layer-wise uniform neighbor sampler over a local (partition) graph.

    Parameters
    ----------
    graph:
        CSR structure to sample from.  When sampling for a distributed trainer
        this is ``partition.local_graph`` (local id space).
    fanouts:
        Neighbors to sample per layer, listed from the layer closest to the
        seeds outward (the paper's ``{10, 25}`` means 10 neighbors at layer 1
        and 25 at layer 2).  ``-1`` keeps the full neighborhood.
    seed:
        RNG seed; each trainer uses an independent stream.
    """

    def __init__(self, graph: CSRGraph, fanouts: Sequence[int], seed: SeedLike = None):
        if not fanouts:
            raise ValueError("fanouts must contain at least one layer")
        for f in fanouts:
            if f == 0 or f < -1:
                raise ValueError(f"fanout must be positive or -1 (full), got {f}")
        self.graph = graph
        self.fanouts = [int(f) for f in fanouts]
        self.rng = ensure_rng(seed)

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    # ------------------------------------------------------------------ #
    def sample(
        self,
        seeds: np.ndarray,
        local_to_global: Optional[np.ndarray] = None,
        step: int = 0,
        labels: Optional[np.ndarray] = None,
    ) -> MiniBatch:
        """Sample a minibatch for *seeds* (given in the graph's id space).

        ``local_to_global`` translates sampler ids to global ids for the
        distributed data path; identity is assumed when omitted (single-machine
        sampling over the full graph).
        """
        seeds = check_1d_int_array(seeds, "seeds", max_value=self.graph.num_nodes, allow_empty=False)
        if local_to_global is None:
            local_to_global = np.arange(self.graph.num_nodes, dtype=np.int64)

        blocks: List[Block] = []
        dst = np.unique(seeds)
        # Sample from the innermost layer (closest to seeds) outward; blocks are
        # then reversed so blocks[0] is the outermost (input) layer.
        for fanout in self.fanouts:
            src_extra, edge_src, edge_dst = self._sample_one_layer(dst, fanout)
            src = np.concatenate([dst, src_extra])
            blocks.append(
                Block(
                    src_nodes=src,
                    dst_nodes=dst,
                    edge_src=edge_src,
                    edge_dst=edge_dst,
                    src_global=local_to_global[src],
                    dst_global=local_to_global[dst],
                )
            )
            dst = src
        blocks.reverse()

        input_local = blocks[0].src_nodes
        batch_labels = (
            labels[local_to_global[np.unique(seeds)]]
            if labels is not None
            else np.zeros(0, dtype=np.int64)
        )
        return MiniBatch(
            seeds_global=local_to_global[np.unique(seeds)],
            blocks=blocks,
            input_local=input_local,
            input_global=local_to_global[input_local],
            labels=batch_labels,
            step=step,
        )

    # ------------------------------------------------------------------ #
    def _sample_one_layer(self, dst: np.ndarray, fanout: int):
        """Sample up to *fanout* in-neighbors for every node in *dst*.

        Returns ``(new_src_nodes, edge_src_index, edge_dst_index)`` where the
        edge indices refer to positions in ``concat([dst, new_src_nodes])`` and
        ``dst`` respectively.
        """
        indptr, indices = self.graph.indptr, self.graph.indices
        sampled_src_chunks: List[np.ndarray] = []
        edge_dst_chunks: List[np.ndarray] = []
        for i, node in enumerate(dst):
            start, end = indptr[node], indptr[node + 1]
            neigh = indices[start:end]
            if len(neigh) == 0:
                continue
            if fanout == -1 or len(neigh) <= fanout:
                chosen = neigh
            else:
                chosen = self.rng.choice(neigh, size=fanout, replace=False)
            sampled_src_chunks.append(np.asarray(chosen, dtype=np.int64))
            edge_dst_chunks.append(np.full(len(chosen), i, dtype=np.int64))

        if sampled_src_chunks:
            sampled_src = np.concatenate(sampled_src_chunks)
            edge_dst = np.concatenate(edge_dst_chunks)
        else:
            sampled_src = np.zeros(0, dtype=np.int64)
            edge_dst = np.zeros(0, dtype=np.int64)

        # Deduplicate frontier nodes; new nodes are appended after dst.
        unique_new = np.setdiff1d(sampled_src, dst, assume_unique=False)
        # Map every sampled endpoint to its row in concat([dst, unique_new]).
        lookup_ids = np.concatenate([dst, unique_new])
        order = np.argsort(lookup_ids, kind="stable")
        sorted_ids = lookup_ids[order]
        pos = np.searchsorted(sorted_ids, sampled_src)
        edge_src = order[pos]
        return unique_new, edge_src.astype(np.int64), edge_dst.astype(np.int64)


def sample_for_partition(
    partition: GraphPartition,
    sampler: NeighborSampler,
    seeds_local: np.ndarray,
    step: int = 0,
    labels: Optional[np.ndarray] = None,
) -> MiniBatch:
    """Convenience wrapper: sample on a partition's local graph with global-id mapping."""
    return sampler.sample(
        seeds_local, local_to_global=partition.local_to_global, step=step, labels=labels
    )


def split_local_halo(partition: GraphPartition, minibatch: MiniBatch):
    """Split a minibatch's input nodes into locally owned vs. halo global ids.

    Returns
    -------
    (local_global_ids, halo_global_ids, local_rows, halo_rows):
        Global ids plus the corresponding row positions in the minibatch's
        input feature matrix, so callers can scatter fetched features into the
        right rows.
    """
    is_halo = partition.is_halo_local_id(minibatch.input_local)
    local_rows = np.nonzero(~is_halo)[0].astype(np.int64)
    halo_rows = np.nonzero(is_halo)[0].astype(np.int64)
    return (
        minibatch.input_global[local_rows],
        minibatch.input_global[halo_rows],
        local_rows,
        halo_rows,
    )
