"""Fan-out neighbor sampling (DGL ``NeighborSampler`` analog).

Given seed nodes and a per-layer fan-out list (the paper uses ``{10, 25}`` for
a 2-layer GraphSAGE), the sampler walks the partition's *local* graph structure
outward layer by layer, uniformly sampling at most ``fanout`` neighbors per
node without replacement.  Halo nodes are legitimate sampling targets (their
structure is present locally) but have no outgoing edges in the local CSR, so
the frontier naturally truncates at the partition boundary — the same
behaviour as DistDGL's local sampling with halo nodes.

The sampler is deliberately stochastic and stateless across minibatches: this
non-determinism is exactly why a static cache is insufficient and a scored
prefetch buffer (the paper's contribution) is needed.

Three implementations are registered in :data:`SAMPLERS`:

* ``"legacy"`` — the original per-node loop drawing capped neighborhoods with
  ``Generator.choice``.  It remains the **default** because the repository's
  golden fixtures pin its exact RNG stream; ``choice``'s rejection-sampled
  stream consumption cannot be reproduced by a batched draw.
* ``"loop"`` — the per-node reference implementation of the *partial
  Fisher–Yates* fan-out draw: a capped node consumes exactly ``fanout``
  uniforms, each selecting the next swap target of a truncated shuffle.
  Statistically identical to ``"legacy"`` (a uniform draw without
  replacement) but expressible as one batched draw per layer.
* ``"vectorized"`` — the hot-path implementation of the same draw:
  degree-bucketed CSR slicing for take-all nodes and a **single** batched
  ``rng.random`` call over offset arithmetic for all capped nodes, with the
  ``fanout`` swap rounds vectorized across nodes.  Because NumPy generators
  consume the stream sequentially, one batched draw is bit-equal to the
  loop's concatenated per-node draws — ``"loop"`` and ``"vectorized"``
  produce identical blocks, edge indices, and RNG-stream consumption (pinned
  by ``tests/test_sampler_differential.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.halo import GraphPartition
from repro.sampling.block import Block, MiniBatch
from repro.utils.registry import Registry
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_1d_int_array


def _finalize_layer(
    dst: np.ndarray,
    sampled_src: np.ndarray,
    edge_dst: np.ndarray,
    pos_scratch: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map sampled neighbors onto frontier rows; shared by every sampler.

    ``pos_scratch`` is a reusable ``num_nodes``-sized array filled with ``-1``
    (restored before returning) giving O(1) node-id -> frontier-row lookups,
    replacing the former sort-based ``setdiff1d``/``searchsorted`` mapping
    with identical results.

    ``dst`` must be unique: the mapping resolves each sampled endpoint to
    *one* row, so a duplicated dst entry would silently attach every edge to
    an arbitrary occurrence and drop the others'.
    :meth:`NeighborSampler.sample` guarantees uniqueness by deduplicating the
    seeds at entry; direct callers get a loud error instead of lost edges.
    """
    rows = np.arange(len(dst), dtype=np.int64)
    pos_scratch[dst] = rows
    if not np.array_equal(pos_scratch[dst], rows):
        pos_scratch[dst] = -1
        raise ValueError(
            "dst contains duplicate nodes; deduplicate the frontier before "
            "sampling (sample() does this for seed batches) — a duplicated "
            "dst row cannot be distinguished by the edge-index mapping"
        )
    # Frontier nodes not already in dst, sorted ascending (deduplicated), are
    # appended after dst — same layout as the former setdiff1d construction.
    mapped = pos_scratch[sampled_src]
    new_mask = mapped < 0
    candidates = sampled_src[new_mask]
    if len(pos_scratch) <= 16 * len(candidates):
        # Dense regime (frontier comparable to the graph): idempotent scratch
        # marking + one linear scan beats hashing the much larger edge array.
        pos_scratch[candidates] = -2
        unique_new = np.nonzero(pos_scratch == -2)[0]
    else:
        # Sparse regime (big graph, small batch): stay bounded by the sampled
        # endpoints instead of scanning every node.  Same sorted-unique result.
        unique_new = np.unique(candidates)
    pos_scratch[unique_new] = len(dst) + np.arange(len(unique_new), dtype=np.int64)
    edge_src = mapped
    edge_src[new_mask] = pos_scratch[candidates]
    pos_scratch[dst] = -1
    pos_scratch[unique_new] = -1
    return unique_new, edge_src.astype(np.int64, copy=False), edge_dst.astype(np.int64, copy=False)


class NeighborSampler:
    """Layer-wise uniform neighbor sampler over a local (partition) graph.

    This base class is the ``"legacy"`` implementation: a per-node Python loop
    drawing capped neighborhoods with ``Generator.choice``.  It stays the
    default so the golden fixtures' RNG streams remain bit-identical; the
    ``"loop"``/``"vectorized"`` pair in :data:`SAMPLERS` implements the
    equivalent partial Fisher–Yates draw with a vectorizable stream.

    Parameters
    ----------
    graph:
        CSR structure to sample from.  When sampling for a distributed trainer
        this is ``partition.local_graph`` (local id space).
    fanouts:
        Neighbors to sample per layer, listed from the layer closest to the
        seeds outward (the paper's ``{10, 25}`` means 10 neighbors at layer 1
        and 25 at layer 2).  ``-1`` keeps the full neighborhood.
    seed:
        RNG seed; each trainer uses an independent stream.
    """

    name = "legacy"

    def __init__(self, graph: CSRGraph, fanouts: Sequence[int], seed: SeedLike = None):
        if not fanouts:
            raise ValueError("fanouts must contain at least one layer")
        for f in fanouts:
            if f == 0 or f < -1:
                raise ValueError(f"fanout must be positive or -1 (full), got {f}")
        self.graph = graph
        self.fanouts = [int(f) for f in fanouts]
        self.rng = ensure_rng(seed)
        # Node-id -> frontier-row scratch for _finalize_layer (kept at -1
        # between calls); one per sampler, so concurrent trainers never share.
        self._pos_scratch = np.full(graph.num_nodes, -1, dtype=np.int64)

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    # ------------------------------------------------------------------ #
    def sample(
        self,
        seeds: np.ndarray,
        local_to_global: Optional[np.ndarray] = None,
        step: int = 0,
        labels: Optional[np.ndarray] = None,
    ) -> MiniBatch:
        """Sample a minibatch for *seeds* (given in the graph's id space).

        ``local_to_global`` translates sampler ids to global ids for the
        distributed data path; identity is assumed when omitted (single-machine
        sampling over the full graph).
        """
        seeds = check_1d_int_array(seeds, "seeds", max_value=self.graph.num_nodes, allow_empty=False)
        if local_to_global is None:
            local_to_global = np.arange(self.graph.num_nodes, dtype=np.int64)

        blocks: List[Block] = []
        # Repeated seeds in a batch are deduplicated here: each node's sampled
        # neighborhood and label appear once, and every layer's dst frontier is
        # unique — the invariant the edge-index mapping in _finalize_layer
        # depends on (duplicates there would silently drop edges).
        seed_nodes = np.unique(seeds)
        dst = seed_nodes
        # Sample from the innermost layer (closest to seeds) outward; blocks are
        # then reversed so blocks[0] is the outermost (input) layer.
        for fanout in self.fanouts:
            src_extra, edge_src, edge_dst = self._sample_one_layer(dst, fanout)
            src = np.concatenate([dst, src_extra])
            blocks.append(
                Block(
                    src_nodes=src,
                    dst_nodes=dst,
                    edge_src=edge_src,
                    edge_dst=edge_dst,
                    src_global=local_to_global[src],
                    dst_global=local_to_global[dst],
                )
            )
            dst = src
        blocks.reverse()

        input_local = blocks[0].src_nodes
        batch_labels = (
            labels[local_to_global[seed_nodes]]
            if labels is not None
            else np.zeros(0, dtype=np.int64)
        )
        return MiniBatch(
            seeds_global=local_to_global[seed_nodes],
            blocks=blocks,
            input_local=input_local,
            input_global=local_to_global[input_local],
            labels=batch_labels,
            step=step,
        )

    # ------------------------------------------------------------------ #
    def _sample_one_layer(self, dst: np.ndarray, fanout: int):
        """Sample up to *fanout* in-neighbors for every node in *dst*.

        Returns ``(new_src_nodes, edge_src_index, edge_dst_index)`` where the
        edge indices refer to positions in ``concat([dst, new_src_nodes])`` and
        ``dst`` respectively.
        """
        indptr, indices = self.graph.indptr, self.graph.indices
        sampled_src_chunks: List[np.ndarray] = []
        edge_dst_chunks: List[np.ndarray] = []
        for i, node in enumerate(dst):
            start, end = indptr[node], indptr[node + 1]
            neigh = indices[start:end]
            if len(neigh) == 0:
                continue
            if fanout == -1 or len(neigh) <= fanout:
                chosen = neigh
            else:
                chosen = self.rng.choice(neigh, size=fanout, replace=False)
            sampled_src_chunks.append(np.asarray(chosen, dtype=np.int64))
            edge_dst_chunks.append(np.full(len(chosen), i, dtype=np.int64))

        if sampled_src_chunks:
            sampled_src = np.concatenate(sampled_src_chunks)
            edge_dst = np.concatenate(edge_dst_chunks)
        else:
            sampled_src = np.zeros(0, dtype=np.int64)
            edge_dst = np.zeros(0, dtype=np.int64)
        return _finalize_layer(dst, sampled_src, edge_dst, self._pos_scratch)


class LoopNeighborSampler(NeighborSampler):
    """Per-node reference implementation of the partial Fisher–Yates draw.

    A capped node with degree ``deg`` consumes exactly ``fanout`` uniform
    doubles: swap round *i* exchanges positions ``i`` and
    ``i + floor(u_i * (deg - i))`` of its neighbor list, and the first
    ``fanout`` positions are the sample — a uniform draw without replacement
    whose stream consumption, unlike ``Generator.choice``'s
    rejection-sampled integers, is a fixed count of doubles.  Because NumPy
    generators fill arrays sequentially, :class:`VectorizedNeighborSampler`
    reproduces this loop bit-for-bit with one batched draw per layer; this
    class exists as its differential twin and as the benchmark baseline.
    """

    name = "loop"

    def _sample_one_layer(self, dst: np.ndarray, fanout: int):
        indptr, indices = self.graph.indptr, self.graph.indices
        sampled_src_chunks: List[np.ndarray] = []
        edge_dst_chunks: List[np.ndarray] = []
        for i, node in enumerate(dst):
            start, end = indptr[node], indptr[node + 1]
            neigh = indices[start:end]
            if len(neigh) == 0:
                continue
            if fanout == -1 or len(neigh) <= fanout:
                chosen = neigh
            else:
                u = self.rng.random(fanout)
                deg = len(neigh)
                arr = neigh.copy()
                for r in range(fanout):
                    j = r + int(u[r] * (deg - r))
                    arr[r], arr[j] = arr[j], arr[r]
                chosen = arr[:fanout]
            sampled_src_chunks.append(np.asarray(chosen, dtype=np.int64))
            edge_dst_chunks.append(np.full(len(chosen), i, dtype=np.int64))

        if sampled_src_chunks:
            sampled_src = np.concatenate(sampled_src_chunks)
            edge_dst = np.concatenate(edge_dst_chunks)
        else:
            sampled_src = np.zeros(0, dtype=np.int64)
            edge_dst = np.zeros(0, dtype=np.int64)
        return _finalize_layer(dst, sampled_src, edge_dst, self._pos_scratch)


class VectorizedNeighborSampler(NeighborSampler):
    """Fully vectorized partial Fisher–Yates fan-out sampler (the hot path).

    Nodes are bucketed by degree: take-all nodes (``deg <= fanout`` or
    ``fanout == -1``) are gathered by CSR slicing with no RNG at all, and all
    capped nodes share **one** ``rng.random(fanout * num_capped)`` draw (in
    dst order); the ``fanout`` swap rounds of the truncated shuffle then run
    vectorized across every capped node at once.  Work per capped node is
    ``O(deg)`` for the initial gather plus ``O(fanout)`` for the swaps — no
    per-neighbor sort — and output and RNG-stream consumption are
    bit-identical to :class:`LoopNeighborSampler` on the same seed.
    """

    name = "vectorized"

    def _sample_one_layer(self, dst: np.ndarray, fanout: int):
        indptr, indices = self.graph.indptr, self.graph.indices
        n = len(dst)
        starts = indptr[dst]
        degs = indptr[dst + 1] - starts

        if fanout == -1:
            cap_mask = np.zeros(n, dtype=bool)
            counts = degs
        else:
            cap_mask = degs > fanout
            counts = np.where(cap_mask, fanout, degs)
        total = int(counts.sum())
        edge_dst = np.repeat(np.arange(n, dtype=np.int64), counts)
        sampled_src = np.empty(total, dtype=np.int64)
        out_first = np.cumsum(counts) - counts  # first output slot per dst row

        take_pos = np.nonzero(~cap_mask & (degs > 0))[0]
        if len(take_pos):
            tc = degs[take_pos]
            within = np.arange(int(tc.sum()), dtype=np.int64) - np.repeat(np.cumsum(tc) - tc, tc)
            flat = np.repeat(starts[take_pos], tc) + within
            slots = np.repeat(out_first[take_pos], tc) + within
            sampled_src[slots] = indices[flat]

        cap_pos = np.nonzero(cap_mask)[0]
        if len(cap_pos):
            num_capped = len(cap_pos)
            cc = degs[cap_pos]
            cap_first = np.cumsum(cc) - cc
            within = np.arange(int(cc.sum()), dtype=np.int64) - np.repeat(cap_first, cc)
            flat = np.repeat(starts[cap_pos], cc) + within
            buf = indices[flat]  # mutable concatenated neighbor lists, dst order
            # The single batched draw: sequential stream consumption makes this
            # equal to the loop twin's concatenated per-node rng.random(fanout).
            u = self.rng.random(fanout * num_capped).reshape(num_capped, fanout)
            arange_fanout = np.arange(fanout, dtype=np.int64)
            for r in range(fanout):
                # Swap round r for every capped node at once.  Each node's
                # (pi, pj) pair lies inside its own segment, so the fancy
                # assignments never collide across nodes.
                j = r + (u[:, r] * (cc - r)).astype(np.int64)
                pi = cap_first + r
                pj = cap_first + j
                tmp = buf[pi].copy()
                buf[pi] = buf[pj]
                buf[pj] = tmp
            sel = np.repeat(cap_first, fanout) + np.tile(arange_fanout, num_capped)
            slots = np.repeat(out_first[cap_pos], fanout) + np.tile(arange_fanout, num_capped)
            sampled_src[slots] = buf[sel]

        return _finalize_layer(dst, sampled_src, edge_dst, self._pos_scratch)


# --------------------------------------------------------------------------- #
# Registry: samplers constructible by name from configs / CLI / benchmarks
# --------------------------------------------------------------------------- #
SAMPLERS = Registry("neighbor sampler")
SAMPLERS.register("legacy", NeighborSampler, aliases=("choice",))
SAMPLERS.register("loop", LoopNeighborSampler, aliases=("reference",))
SAMPLERS.register("vectorized", VectorizedNeighborSampler, aliases=("fast",))


def build_sampler(
    name: str, graph: CSRGraph, fanouts: Sequence[int], seed: SeedLike = None
) -> NeighborSampler:
    """Build a registered neighbor sampler by name (see :data:`SAMPLERS`)."""
    return SAMPLERS.build(name, graph, fanouts, seed=seed)


def sample_for_partition(
    partition: GraphPartition,
    sampler: NeighborSampler,
    seeds_local: np.ndarray,
    step: int = 0,
    labels: Optional[np.ndarray] = None,
) -> MiniBatch:
    """Convenience wrapper: sample on a partition's local graph with global-id mapping."""
    return sampler.sample(
        seeds_local, local_to_global=partition.local_to_global, step=step, labels=labels
    )


def split_local_halo(partition: GraphPartition, minibatch: MiniBatch):
    """Split a minibatch's input nodes into locally owned vs. halo global ids.

    Returns
    -------
    (local_global_ids, halo_global_ids, local_rows, halo_rows):
        Global ids plus the corresponding row positions in the minibatch's
        input feature matrix, so callers can scatter fetched features into the
        right rows.
    """
    is_halo = partition.is_halo_local_id(minibatch.input_local)
    local_rows = np.nonzero(~is_halo)[0].astype(np.int64)
    halo_rows = np.nonzero(is_halo)[0].astype(np.int64)
    return (
        minibatch.input_global[local_rows],
        minibatch.input_global[halo_rows],
        local_rows,
        halo_rows,
    )
