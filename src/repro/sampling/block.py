"""Message-flow-graph (MFG) blocks.

DGL represents each GNN layer's computation as a bipartite *block*: messages
flow from ``src`` nodes (the sampled neighborhood frontier) to ``dst`` nodes
(the nodes whose representations are being computed at that layer).  A
minibatch for an L-layer model is a list of L blocks; the input features are
gathered for the src nodes of the **first** (outermost) block, and the final
block's dst nodes are the seed nodes of the minibatch.

Blocks here store node ids in the *local id space of a partition* plus the
corresponding global ids, because the distributed data path needs global ids
(to decide owned vs. halo) while the numeric aggregation needs dense local
row indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.utils.validation import check_1d_int_array


@dataclass
class Block:
    """One bipartite message-passing layer.

    Attributes
    ----------
    src_nodes:
        Local ids of source (input-side) nodes; the first ``len(dst_nodes)``
        entries are the dst nodes themselves (self-loop convention used by
        GraphSAGE's concat of self and neighbor aggregation).
    dst_nodes:
        Local ids of destination (output-side) nodes.
    edge_src / edge_dst:
        Edge endpoints as **row indices** into ``src_nodes`` / ``dst_nodes``.
    src_global / dst_global:
        Global node ids aligned with ``src_nodes`` / ``dst_nodes``.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    src_global: np.ndarray
    dst_global: np.ndarray

    def __post_init__(self) -> None:
        self.src_nodes = check_1d_int_array(self.src_nodes, "src_nodes")
        self.dst_nodes = check_1d_int_array(self.dst_nodes, "dst_nodes")
        self.edge_src = check_1d_int_array(self.edge_src, "edge_src", max_value=max(1, len(self.src_nodes)))
        self.edge_dst = check_1d_int_array(self.edge_dst, "edge_dst", max_value=max(1, len(self.dst_nodes)))
        self.src_global = check_1d_int_array(self.src_global, "src_global")
        self.dst_global = check_1d_int_array(self.dst_global, "dst_global")
        if len(self.edge_src) != len(self.edge_dst):
            raise ValueError("edge_src and edge_dst must have equal length")
        if len(self.src_global) != len(self.src_nodes):
            raise ValueError("src_global must align with src_nodes")
        if len(self.dst_global) != len(self.dst_nodes):
            raise ValueError("dst_global must align with dst_nodes")

    @property
    def num_src(self) -> int:
        return int(len(self.src_nodes))

    @property
    def num_dst(self) -> int:
        return int(len(self.dst_nodes))

    @property
    def num_edges(self) -> int:
        return int(len(self.edge_src))

    def in_degrees(self) -> np.ndarray:
        """Number of incoming (message) edges per dst node."""
        return np.bincount(self.edge_dst, minlength=self.num_dst).astype(np.int64)


@dataclass
class MiniBatch:
    """A sampled minibatch: seeds + a list of blocks (outermost first).

    ``input_global`` are the global ids whose features must be gathered before
    the forward pass can run — this is precisely the set the distributed data
    path must assemble from local KVStore lookups and remote RPC pulls.
    """

    seeds_global: np.ndarray
    blocks: List[Block]
    input_local: np.ndarray
    input_global: np.ndarray
    labels: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    step: int = 0

    def __post_init__(self) -> None:
        self.seeds_global = check_1d_int_array(self.seeds_global, "seeds_global")
        self.input_local = check_1d_int_array(self.input_local, "input_local")
        self.input_global = check_1d_int_array(self.input_global, "input_global")
        if len(self.input_local) != len(self.input_global):
            raise ValueError("input_local and input_global must align")

    @property
    def num_seeds(self) -> int:
        return int(len(self.seeds_global))

    @property
    def num_input_nodes(self) -> int:
        return int(len(self.input_global))

    def total_edges(self) -> int:
        """Total message edges across all layers (drives sampling cost)."""
        return int(sum(b.num_edges for b in self.blocks))

    def summary(self) -> Dict[str, int]:
        return {
            "num_seeds": self.num_seeds,
            "num_input_nodes": self.num_input_nodes,
            "num_layers": len(self.blocks),
            "total_edges": self.total_edges(),
        }
