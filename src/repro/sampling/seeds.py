"""Seed-node iteration for distributed trainers.

DistDGL's second level of partitioning redistributes a partition's training
nodes among the trainer processes co-located on that machine (4 trainers/node
in the paper).  :class:`SeedPartitioner` performs that split and
:class:`SeedIterator` yields shuffled, fixed-size seed batches per epoch — the
paper keeps the batch size constant (2000) across all configurations, which is
why the number of minibatches per trainer shrinks as trainers grow (Table III).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_1d_int_array, check_positive


class SeedPartitioner:
    """Split a partition's training nodes among its co-located trainers."""

    def __init__(self, train_nids_local: np.ndarray, num_trainers: int, seed: SeedLike = None):
        check_positive(num_trainers, "num_trainers")
        self.train_nids_local = check_1d_int_array(train_nids_local, "train_nids_local")
        self.num_trainers = int(num_trainers)
        rng = ensure_rng(seed)
        shuffled = self.train_nids_local.copy()
        rng.shuffle(shuffled)
        self._splits: List[np.ndarray] = [
            np.sort(chunk) for chunk in np.array_split(shuffled, num_trainers)
        ]

    def trainer_seeds(self, trainer_rank: int) -> np.ndarray:
        """Seed nodes (local ids) assigned to *trainer_rank*."""
        if trainer_rank < 0 or trainer_rank >= self.num_trainers:
            raise IndexError(f"trainer_rank {trainer_rank} out of range")
        return self._splits[trainer_rank]

    def assigned_seeds(self) -> np.ndarray:
        """All assigned seeds across trainers, sorted.

        By construction this equals the sorted input seed set — every training
        node lands on exactly one trainer.  The cluster property tests assert
        the invariant for arbitrary ``(seeds, num_trainers)`` combinations.
        """
        if not self._splits:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(self._splits))


class SeedIterator:
    """Iterate over shuffled seed batches for one trainer, epoch by epoch.

    ``active_fraction`` and ``rotation`` model **hot-set drift** (the
    cache-stress scenarios): each epoch only a contiguous (wrap-around)
    window holding ``active_fraction`` of the seeds is iterated, and the
    window's start advances by ``rotation`` of the seed set per epoch — so
    the halo nodes a trainer touches drift over training, which is exactly
    the regime where static caches decay and adaptive tiers pay off.  The
    defaults (``1.0`` / ``0.0``) iterate the full set with an unchanged RNG
    stream, bit-identical to the pre-drift iterator.
    """

    def __init__(
        self,
        seeds: np.ndarray,
        batch_size: int,
        seed: SeedLike = None,
        drop_last: bool = False,
        active_fraction: float = 1.0,
        rotation: float = 0.0,
    ):
        check_positive(batch_size, "batch_size")
        self.seeds = check_1d_int_array(seeds, "seeds")
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self.rng = ensure_rng(seed)
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError(f"active_fraction must be in (0, 1], got {active_fraction!r}")
        if not 0.0 <= rotation <= 1.0:
            raise ValueError(f"rotation must be in [0, 1], got {rotation!r}")
        self.active_fraction = float(active_fraction)
        self.rotation = float(rotation)
        self._epochs_started = 0
        # In-flight epoch state (for mid-epoch checkpoint/restore): the
        # shuffled order, the next batch start, and the iteration limit.
        self._order: Optional[np.ndarray] = None
        self._cursor = 0
        self._limit = 0
        self._resume = False

    @property
    def num_active(self) -> int:
        """Seeds active per epoch (= all seeds without drift)."""
        n = len(self.seeds)
        if n == 0:
            return 0
        if self.active_fraction >= 1.0:
            return n
        return max(1, int(round(self.active_fraction * n)))

    @property
    def num_batches(self) -> int:
        """Number of minibatches per epoch for this trainer."""
        n = self.num_active
        if n == 0:
            return 0
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def active_window(self, epoch_index: int) -> np.ndarray:
        """The (unshuffled) seed window active during *epoch_index*."""
        n = len(self.seeds)
        if n == 0:
            return self.seeds
        if self.active_fraction >= 1.0:
            # Full set: identical to the pre-drift iterator, including the
            # array the shuffle permutes (RNG-stream compatibility).
            return self.seeds.copy()
        start = int(round(epoch_index * self.rotation * n)) % n
        idx = (start + np.arange(self.num_active)) % n
        return self.seeds[idx]

    def epoch(self, epoch_index: Optional[int] = None) -> Iterator[np.ndarray]:
        """Yield seed batches for one epoch (reshuffled every call).

        ``epoch_index`` pins the drift window; when omitted an internal
        counter (one increment per ``epoch`` call, counted eagerly, not at
        first consumption) drives the rotation.
        """
        if self._resume:
            # Restored mid-epoch: continue the interrupted epoch (already
            # counted in ``_epochs_started`` when it originally began).
            return self._iterate(0)
        if epoch_index is None:
            epoch_index = self._epochs_started
        self._epochs_started += 1
        return self._iterate(epoch_index)

    def _iterate(self, epoch_index: int) -> Iterator[np.ndarray]:
        if self._resume:
            self._resume = False
            order = self._order
            if order is None:
                return
        else:
            if len(self.seeds) == 0:
                self._order = None
                return
            order = self.active_window(epoch_index)
            self.rng.shuffle(order)
            self._order = order
            self._limit = (
                self.num_batches * self.batch_size if self.drop_last else len(order)
            )
            self._cursor = 0
        while self._cursor < self._limit:
            start = self._cursor
            batch = order[start: start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            self._cursor = start + self.batch_size
            if len(batch):
                yield batch
        self._order = None

    def reassign(self, seeds: np.ndarray) -> None:
        """Swap the seed set **in place** (elastic re-sharding).

        Mutates the existing iterator — prebuilt pipeline stages hold a
        direct reference to it, so a replacement object would silently go
        unused.  The RNG stream and epoch counter continue uninterrupted;
        an epoch already in flight finishes over its old shuffled order and
        the new assignment takes effect at the next :meth:`epoch` call.
        """
        self.seeds = check_1d_int_array(seeds, "seeds")

    def snapshot(self) -> Dict[str, Any]:
        """Checkpointable iteration state (RNG stream + in-flight epoch)."""
        mid = self._order is not None
        return {
            "epochs_started": self._epochs_started,
            "rng_state": self.rng.bit_generator.state,
            "order": self._order.copy() if mid else None,
            "cursor": self._cursor,
            "limit": self._limit,
            "mid_epoch": mid,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rewind to a :meth:`snapshot`; a mid-epoch snapshot resumes the
        interrupted epoch bit-identically on the next :meth:`epoch` call."""
        self._epochs_started = int(state["epochs_started"])
        self.rng.bit_generator.state = state["rng_state"]
        order = state["order"]
        self._order = order.copy() if order is not None else None
        self._cursor = int(state["cursor"])
        self._limit = int(state["limit"])
        self._resume = bool(state["mid_epoch"]) and self._order is not None

    def reset(self) -> None:
        """Rewind the drift epoch counter (between independent runs)."""
        self._epochs_started = 0
        self._order = None
        self._cursor = 0
        self._limit = 0
        self._resume = False

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.epoch()


def minibatches_per_trainer(
    num_train_nodes: int, num_partitions: int, trainers_per_node: int, batch_size: int
) -> int:
    """Expected minibatches per trainer per epoch under the paper's setup.

    The graph is split into ``num_partitions`` (one per machine), each machine
    runs ``trainers_per_node`` trainers, and the batch size is constant — so
    each trainer sees ``|V_train| / (num_partitions * trainers_per_node)``
    seeds per epoch.
    """
    check_positive(batch_size, "batch_size")
    seeds_per_trainer = num_train_nodes / max(1, num_partitions * trainers_per_node)
    return max(1, int(np.ceil(seeds_per_trainer / batch_size)))
