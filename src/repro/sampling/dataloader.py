"""Distributed data loader: seeds + sampler glued together per trainer.

The :class:`DistDataLoader` mirrors DistDGL's ``DistNodeDataLoader``: each
trainer instantiates one, pointed at its partition and its share of the
training seeds, and iterates minibatches.  The loader itself is oblivious to
prefetching — both the baseline pipeline and the MassiveGNN pipeline consume
the same minibatches, which is what makes the comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.graph.halo import GraphPartition
from repro.sampling.block import MiniBatch
from repro.sampling.neighbor_sampler import NeighborSampler, build_sampler
from repro.sampling.seeds import SeedIterator
from repro.utils.rng import SeedLike, derive_seed


class DistDataLoader:
    """Per-trainer minibatch loader over a graph partition.

    Parameters
    ----------
    partition:
        The trainer's :class:`GraphPartition`.
    seeds_local:
        Training seed nodes in the partition's **local** id space (owned nodes
        only; halo nodes are never seeds).
    fanouts:
        Per-layer neighbor fan-outs (e.g. ``[10, 25]``).
    batch_size:
        Seeds per minibatch (paper: 2000).
    labels:
        Optional global label array used to attach seed labels to minibatches.
    sampler:
        Registry key from :data:`repro.sampling.neighbor_sampler.SAMPLERS`
        selecting the fan-out implementation (``"legacy"`` default; the
        ``"vectorized"`` hot path and its ``"loop"`` reference twin share a
        different — random-key — RNG stream).
    """

    def __init__(
        self,
        partition: GraphPartition,
        seeds_local: np.ndarray,
        fanouts,
        batch_size: int,
        labels: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        drop_last: bool = False,
        sampler: str = "legacy",
        seed_active_fraction: float = 1.0,
        seed_rotation: float = 0.0,
    ):
        self.partition = partition
        self.labels = labels
        self.sampler_name = sampler
        self.sampler: NeighborSampler = build_sampler(
            sampler, partition.local_graph, fanouts, seed=derive_seed(seed, partition.part_id, 11)
        )
        self.seed_iterator = SeedIterator(
            seeds_local,
            batch_size,
            seed=derive_seed(seed, partition.part_id, 13),
            drop_last=drop_last,
            active_fraction=seed_active_fraction,
            rotation=seed_rotation,
        )
        self._step = 0

    @property
    def num_batches_per_epoch(self) -> int:
        return self.seed_iterator.num_batches

    def sample(self, seeds: np.ndarray) -> MiniBatch:
        """Sample one minibatch for *seeds*, advancing the lifetime step counter.

        Both :meth:`epoch` and the pipeline's
        :class:`~repro.sampling.pipeline.SampleStage` route through here, so
        the two data paths share one sampler RNG stream and step sequence.
        """
        minibatch = self.sampler.sample(
            seeds,
            local_to_global=self.partition.local_to_global,
            step=self._step,
            labels=self.labels,
        )
        self._step += 1
        return minibatch

    def epoch(self) -> Iterator[MiniBatch]:
        """Yield sampled minibatches for one epoch."""
        for seeds in self.seed_iterator.epoch():
            yield self.sample(seeds)

    def reassign_seeds(self, seeds_local: np.ndarray) -> None:
        """Re-point this trainer at a new seed share (elastic re-sharding).

        Delegates to :meth:`SeedIterator.reassign`, which mutates the
        existing iterator in place so the prebuilt pipeline stages that hold
        a reference to it see the new assignment from the next epoch on.
        """
        self.seed_iterator.reassign(seeds_local)

    def snapshot(self) -> Dict[str, Any]:
        """Checkpointable loader state: step counter + sampler RNG + seeds."""
        return {
            "step": self._step,
            "sampler_rng_state": self.sampler.rng.bit_generator.state,
            "seed_iterator": self.seed_iterator.snapshot(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rewind to a :meth:`snapshot` (bit-exact sampler + seed streams)."""
        self._step = int(state["step"])
        self.sampler.rng.bit_generator.state = state["sampler_rng_state"]
        self.seed_iterator.restore(state["seed_iterator"])

    def reset(self) -> None:
        """Reset the step and drift-epoch counters (between independent runs)."""
        self._step = 0
        self.seed_iterator.reset()

    @property
    def steps_taken(self) -> int:
        return self._step
