"""Composable minibatch pipeline (GraphBolt datapipe analog).

GraphBolt expresses minibatch preparation as chainable datapipe stages —
``ItemSampler → sample_neighbor → fetch_feature → copy_to`` — so new data
paths are configurations, not code paths.  This module gives the simulator
the same shape:

* :class:`SeedStage` — yield shuffled seed batches from a trainer's
  :class:`~repro.sampling.seeds.SeedIterator`;
* :class:`SampleStage` — fan-out neighbor sampling, producing
  :class:`~repro.sampling.block.MiniBatch` objects;
* :class:`FetchFeatureStage` — assemble the input feature matrix through a
  :class:`~repro.features.store.FeatureStore` (local vs. halo routing);
* :class:`BatchStage` — final assembly/validation into a
  :class:`PipelineBatch` ready for the model.

Stages chain with ``>>`` into a :class:`MiniBatchPipeline`::

    pipeline = (
        SeedStage(loader.seed_iterator)
        >> SampleStage(loader)
        >> FetchFeatureStage(store)
        >> BatchStage()
    )
    for batch in pipeline.epoch():
        ...

The training engine runs whatever pipeline it is given: the DistDGL baseline
and MassiveGNN prefetching differ only in the feature store's halo source and
the pipeline's timing policy, not in engine code.  Named configurations are
registered in :data:`repro.training.pipelines.PIPELINES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

import numpy as np

from repro.sampling.block import MiniBatch
from repro.sampling.dataloader import DistDataLoader
from repro.sampling.seeds import SeedIterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (features imports sampling)
    from repro.features.source import FetchResult
    from repro.features.store import FeatureStore


@dataclass
class PipelineBatch:
    """One fully prepared minibatch: sampled structure + features + fetch cost."""

    minibatch: MiniBatch
    features: Optional[np.ndarray] = None
    fetch: Optional["FetchResult"] = None
    step: int = -1

    @property
    def labels(self) -> np.ndarray:
        return self.minibatch.labels

    @property
    def blocks(self):
        return self.minibatch.blocks


class PipelineStage:
    """One chainable transformation of the minibatch iterator."""

    name = "stage"

    def apply(self, upstream: Optional[Iterator[Any]]) -> Iterator[Any]:
        """Transform the upstream iterator (``None`` for source stages)."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __rshift__(self, other: "PipelineStage") -> "MiniBatchPipeline":
        return MiniBatchPipeline([self, other])


class SeedStage(PipelineStage):
    """Source stage: shuffled fixed-size seed batches for one epoch."""

    name = "seed"

    def __init__(self, seed_iterator: SeedIterator):
        self.seed_iterator = seed_iterator

    def apply(self, upstream: Optional[Iterator[Any]]) -> Iterator[np.ndarray]:
        if upstream is not None:
            raise ValueError("SeedStage is a source stage and must come first")
        return iter(self.seed_iterator.epoch())


class SampleStage(PipelineStage):
    """Fan-out neighbor sampling: seed batches -> :class:`MiniBatch` objects.

    Delegates to the trainer's :class:`DistDataLoader` so the sampler RNG
    stream and lifetime step counter are shared with the legacy
    ``dataloader.epoch()`` path — the two produce bit-identical minibatches.
    """

    name = "sample"

    def __init__(self, dataloader: DistDataLoader):
        self.dataloader = dataloader

    def apply(self, upstream: Iterator[np.ndarray]) -> Iterator[MiniBatch]:
        for seeds in upstream:
            yield self.dataloader.sample(seeds)


class FetchFeatureStage(PipelineStage):
    """Assemble input features for each minibatch through a feature store."""

    name = "fetch-feature"

    def __init__(self, store: "FeatureStore"):
        self.store = store

    def apply(self, upstream: Iterator[MiniBatch]) -> Iterator[PipelineBatch]:
        for minibatch in upstream:
            features, fetch = self.store.fetch_minibatch(minibatch)
            yield PipelineBatch(minibatch=minibatch, features=features, fetch=fetch)


class BatchStage(PipelineStage):
    """Final assembly: number the batch and validate it is model-ready."""

    name = "batch"

    def __init__(self) -> None:
        self._step = 0

    def apply(self, upstream: Iterator[PipelineBatch]) -> Iterator[PipelineBatch]:
        for batch in upstream:
            if batch.features is None:
                raise ValueError("BatchStage received a batch without features; "
                                 "place a FetchFeatureStage before it")
            if batch.features.ndim != 2 or (
                batch.features.shape[0] != batch.minibatch.num_input_nodes
            ):
                raise ValueError(
                    f"feature matrix shape {batch.features.shape} does not provide one "
                    f"row per input node ({batch.minibatch.num_input_nodes} expected)"
                )
            batch.step = self._step
            self._step += 1
            yield batch


class MiniBatchPipeline:
    """An ordered chain of stages producing :class:`PipelineBatch` per epoch.

    Beyond iteration, a pipeline carries what the training engine needs to run
    it without knowing how it was configured: the ``timing`` policy that maps
    component costs onto the simulated clock (Eq. 2 vs. Eqs. 3–5), the
    composed :class:`FeatureStore`, and the one-time ``init_report`` of any
    source that had to be populated before the first minibatch.
    """

    def __init__(
        self,
        stages: List[PipelineStage],
        timing: Optional[Any] = None,
        name: str = "pipeline",
        feature_store: Optional["FeatureStore"] = None,
        init_report: Optional[Dict[str, float]] = None,
    ):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.timing = timing
        self.name = name
        self.feature_store = feature_store
        self.init_report = init_report

    # ------------------------------------------------------------------ #
    def __rshift__(self, stage: PipelineStage) -> "MiniBatchPipeline":
        return MiniBatchPipeline(
            self.stages + [stage],
            timing=self.timing,
            name=self.name,
            feature_store=self.feature_store,
            init_report=self.init_report,
        )

    def configure(
        self,
        timing: Optional[Any] = None,
        name: Optional[str] = None,
        feature_store: Optional["FeatureStore"] = None,
        init_report: Optional[Dict[str, float]] = None,
    ) -> "MiniBatchPipeline":
        """Attach run metadata after ``>>`` composition (returns self)."""
        if timing is not None:
            self.timing = timing
        if name is not None:
            self.name = name
        if feature_store is not None:
            self.feature_store = feature_store
        if init_report is not None:
            self.init_report = init_report
        return self

    # ------------------------------------------------------------------ #
    def epoch(self) -> Iterator[PipelineBatch]:
        """Run every stage lazily over one epoch of seeds."""
        iterator: Optional[Iterator[Any]] = None
        for stage in self.stages:
            iterator = stage.apply(iterator)
        assert iterator is not None
        return iterator

    def __iter__(self) -> Iterator[PipelineBatch]:
        return self.epoch()

    def describe(self) -> str:
        return " >> ".join(stage.describe() for stage in self.stages)

    # ------------------------------------------------------------------ #
    # Telemetry pass-throughs
    # ------------------------------------------------------------------ #
    @property
    def init_time_s(self) -> float:
        """Simulated one-time initialization cost charged before step 0."""
        if self.init_report is None:
            return 0.0
        return float(self.init_report.get("rpc_time_s", 0.0))

    @property
    def prefetcher(self):
        return self.feature_store.prefetcher if self.feature_store is not None else None

    @property
    def hit_tracker(self):
        return self.feature_store.tracker if self.feature_store is not None else None

    @property
    def hit_rate(self) -> Optional[float]:
        return self.feature_store.hit_rate if self.feature_store is not None else None
