"""Minibatch sampling: blocks (MFGs), neighbor sampler, seeds, loader, pipeline."""

from repro.sampling.block import Block, MiniBatch
from repro.sampling.dataloader import DistDataLoader
from repro.sampling.neighbor_sampler import (
    SAMPLERS,
    LoopNeighborSampler,
    NeighborSampler,
    VectorizedNeighborSampler,
    build_sampler,
    sample_for_partition,
    split_local_halo,
)
from repro.sampling.pipeline import (
    BatchStage,
    FetchFeatureStage,
    MiniBatchPipeline,
    PipelineBatch,
    PipelineStage,
    SampleStage,
    SeedStage,
)
from repro.sampling.seeds import SeedIterator, SeedPartitioner, minibatches_per_trainer

__all__ = [
    "Block",
    "MiniBatch",
    "DistDataLoader",
    "NeighborSampler",
    "LoopNeighborSampler",
    "VectorizedNeighborSampler",
    "SAMPLERS",
    "build_sampler",
    "sample_for_partition",
    "split_local_halo",
    "BatchStage",
    "FetchFeatureStage",
    "MiniBatchPipeline",
    "PipelineBatch",
    "PipelineStage",
    "SampleStage",
    "SeedStage",
    "SeedIterator",
    "SeedPartitioner",
    "minibatches_per_trainer",
]
