"""Eviction policies for the prefetch buffer.

The paper's policy is score-threshold eviction (Algorithm 2,
``EVICT_AND_REPLACE``): during an eviction round every slot whose eviction
score has decayed below ``α`` is evicted, and an equal number of replacement
candidates with the highest access score (ties broken by degree) moves in.

Alternative policies are included for ablation benchmarks — they answer the
question the paper raises in Section I: is a simple recency or random policy
enough, or does the scored approach actually matter?
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.scoreboard import EvictionScores
from repro.utils.registry import Registry
from repro.utils.rng import SeedLike, ensure_rng


class EvictionPolicy(Protocol):
    """Selects which buffer slots to evict during an eviction round."""

    name: str

    def select(self, scores: EvictionScores, alpha: float,
               last_hit_step: np.ndarray, step: int) -> np.ndarray:
        """Return the slot indices to evict."""
        ...


class ScoreThresholdPolicy:
    """The paper's policy: evict slots whose S_E fell below the threshold α."""

    name = "score-threshold"

    def select(self, scores: EvictionScores, alpha: float,
               last_hit_step: np.ndarray, step: int) -> np.ndarray:
        return scores.below_threshold(alpha)


class LRUPolicy:
    """Evict the slots whose nodes were hit least recently.

    Evicts the same *number* of slots the score policy would have (so the two
    are comparable per round) but chooses them by recency instead of score.
    """

    name = "lru"

    def select(self, scores: EvictionScores, alpha: float,
               last_hit_step: np.ndarray, step: int) -> np.ndarray:
        num_to_evict = len(scores.below_threshold(alpha))
        if num_to_evict == 0:
            return np.zeros(0, dtype=np.int64)
        order = np.argsort(last_hit_step, kind="stable")
        return order[:num_to_evict].astype(np.int64)


class RandomEvictionPolicy:
    """Evict a random set of slots (same count as the score policy)."""

    name = "random"

    def __init__(self, seed: SeedLike = None):
        self.rng = ensure_rng(seed)

    def select(self, scores: EvictionScores, alpha: float,
               last_hit_step: np.ndarray, step: int) -> np.ndarray:
        num_to_evict = len(scores.below_threshold(alpha))
        capacity = len(scores.values)
        if num_to_evict == 0 or capacity == 0:
            return np.zeros(0, dtype=np.int64)
        return np.sort(self.rng.choice(capacity, size=min(num_to_evict, capacity), replace=False)).astype(np.int64)


class NoEvictionPolicy:
    """Never evict (the paper's *prefetch without eviction* variant)."""

    name = "none"

    def select(self, scores: EvictionScores, alpha: float,
               last_hit_step: np.ndarray, step: int) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)


EVICTION_POLICIES = Registry("eviction policy")
EVICTION_POLICIES.register(
    "score-threshold", lambda seed=None: ScoreThresholdPolicy(), aliases=("score", "paper")
)
EVICTION_POLICIES.register("lru", lambda seed=None: LRUPolicy())
EVICTION_POLICIES.register("random", lambda seed=None: RandomEvictionPolicy(seed=seed))
EVICTION_POLICIES.register(
    "none", lambda seed=None: NoEvictionPolicy(), aliases=("no-eviction",)
)


def build_eviction_policy(name: str, seed: SeedLike = None) -> EvictionPolicy:
    """Factory: ``score-threshold`` (default), ``lru``, ``random``, or ``none``.

    Backed by :data:`EVICTION_POLICIES`; unknown names raise a ``ValueError``
    listing every registered policy.
    """
    return EVICTION_POLICIES.build(name, seed=seed)
