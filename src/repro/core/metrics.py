"""Prefetching quality metrics: hit rate tracking and communication counters.

Hit rate (Eq. 8): ``h / (h + m)`` where ``h`` counts sampled halo nodes found
in the prefetch buffer and ``m`` counts those that had to be fetched over RPC.
The tracker records per-step history so the Fig. 10 / Fig. 12 trajectories can
be regenerated, and marks the eviction points (every Δ steps) the figures
annotate with dashed vertical lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


def hit_rate(hits: int, misses: int) -> float:
    """Eq. 8: fraction of sampled halo nodes served from the prefetch buffer."""
    total = hits + misses
    if total <= 0:
        return 0.0
    return hits / total


@dataclass
class HitRateTracker:
    """Per-minibatch hit/miss history for one trainer."""

    hits_history: List[int] = field(default_factory=list)
    misses_history: List[int] = field(default_factory=list)
    eviction_steps: List[int] = field(default_factory=list)
    total_hits: int = 0
    total_misses: int = 0

    def record(self, hits: int, misses: int, *, eviction: bool = False) -> None:
        if hits < 0 or misses < 0:
            raise ValueError("hits and misses must be non-negative")
        self.hits_history.append(int(hits))
        self.misses_history.append(int(misses))
        self.total_hits += int(hits)
        self.total_misses += int(misses)
        if eviction:
            self.eviction_steps.append(len(self.hits_history) - 1)

    @property
    def num_steps(self) -> int:
        return len(self.hits_history)

    @property
    def cumulative_hit_rate(self) -> float:
        return hit_rate(self.total_hits, self.total_misses)

    def per_step_hit_rate(self) -> np.ndarray:
        """Hit rate of each individual minibatch."""
        hits = np.asarray(self.hits_history, dtype=np.float64)
        misses = np.asarray(self.misses_history, dtype=np.float64)
        total = np.maximum(hits + misses, 1.0)
        return hits / total

    def running_hit_rate(self) -> np.ndarray:
        """Cumulative hit rate after each minibatch (the Fig. 10 trajectory)."""
        hits = np.cumsum(self.hits_history, dtype=np.float64)
        misses = np.cumsum(self.misses_history, dtype=np.float64)
        total = np.maximum(hits + misses, 1.0)
        return hits / total

    def windowed_hit_rate(self, window: int = 50) -> np.ndarray:
        """Hit rate over a sliding window of minibatches."""
        if window <= 0:
            raise ValueError("window must be positive")
        per_step_hits = np.asarray(self.hits_history, dtype=np.float64)
        per_step_total = per_step_hits + np.asarray(self.misses_history, dtype=np.float64)
        kernel = np.ones(min(window, max(1, len(per_step_hits))))
        hits_win = np.convolve(per_step_hits, kernel, mode="valid")
        total_win = np.maximum(np.convolve(per_step_total, kernel, mode="valid"), 1.0)
        return hits_win / total_win

    def summary(self) -> Dict[str, float]:
        return {
            "steps": float(self.num_steps),
            "hit_rate": self.cumulative_hit_rate,
            "total_hits": float(self.total_hits),
            "total_misses": float(self.total_misses),
            "eviction_rounds": float(len(self.eviction_steps)),
        }


@dataclass
class PrefetchCounters:
    """Cumulative communication-side counters for one trainer's prefetcher."""

    remote_nodes_fetched: int = 0          # nodes pulled over RPC (misses + replacements + init)
    remote_nodes_for_misses: int = 0
    remote_nodes_for_replacement: int = 0
    remote_nodes_at_init: int = 0
    eviction_rounds: int = 0
    nodes_evicted: int = 0
    halo_nodes_sampled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "remote_nodes_fetched": self.remote_nodes_fetched,
            "remote_nodes_for_misses": self.remote_nodes_for_misses,
            "remote_nodes_for_replacement": self.remote_nodes_for_replacement,
            "remote_nodes_at_init": self.remote_nodes_at_init,
            "eviction_rounds": self.eviction_rounds,
            "nodes_evicted": self.nodes_evicted,
            "halo_nodes_sampled": self.halo_nodes_sampled,
        }


def merge_hit_trackers(trackers: List[HitRateTracker]) -> HitRateTracker:
    """Merge trackers from several trainers into one aggregate trajectory.

    Per-step entries are summed element-wise up to the shortest history, which
    matches how the paper plots a single hit-rate curve per configuration.
    """
    merged = HitRateTracker()
    if not trackers:
        return merged
    min_len = min(t.num_steps for t in trackers)
    for step in range(min_len):
        hits = sum(t.hits_history[step] for t in trackers)
        misses = sum(t.misses_history[step] for t in trackers)
        eviction = any(step in t.eviction_steps for t in trackers)
        merged.record(hits, misses, eviction=eviction)
    return merged
