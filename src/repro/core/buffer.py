"""Fixed-capacity prefetch buffer holding halo-node features.

One buffer exists per trainer PE (``BUF_p^i`` in the paper).  Its capacity is
fixed at initialization (``f_h`` percent of the partition's halo nodes) and
never changes: every eviction round replaces exactly as many nodes as it
evicts, so the memory footprint stays constant throughout training.

Membership queries must be fast — every minibatch tests all sampled halo
nodes against the buffer — so the buffer keeps a sorted index of the resident
global ids alongside the slot arrays and answers lookups with
``np.searchsorted`` (the NumPy equivalent of the paper's NUMBA-parallel
lookup).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array, check_2d_float_array


class PrefetchBuffer:
    """Fixed-size feature cache keyed by global node id."""

    def __init__(self, node_ids: np.ndarray, features: np.ndarray):
        node_ids = check_1d_int_array(node_ids, "node_ids")
        features = check_2d_float_array(features, "features")
        if len(node_ids) != len(features):
            raise ValueError("node_ids and features must align")
        if len(np.unique(node_ids)) != len(node_ids):
            raise ValueError("buffer node ids must be unique")
        self._slot_ids = node_ids.copy()
        self._features = features.copy()
        self._rebuild_index()

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, feature_dim: int) -> "PrefetchBuffer":
        return cls(np.zeros(0, dtype=np.int64), np.zeros((0, feature_dim), dtype=np.float32))

    def _rebuild_index(self) -> None:
        self._order = np.argsort(self._slot_ids, kind="stable")
        self._sorted_ids = self._slot_ids[self._order]

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return int(len(self._slot_ids))

    @property
    def feature_dim(self) -> int:
        return int(self._features.shape[1])

    @property
    def node_ids(self) -> np.ndarray:
        """Global ids currently resident, in slot order (copy)."""
        return self._slot_ids.copy()

    def nbytes(self) -> int:
        return int(self._features.nbytes + self._slot_ids.nbytes + self._sorted_ids.nbytes)

    # ------------------------------------------------------------------ #
    def lookup(self, global_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Membership test.

        Returns ``(hit_mask, slots)`` where ``hit_mask[i]`` says whether
        ``global_ids[i]`` is resident and ``slots[i]`` is its slot index
        (undefined where ``hit_mask`` is False).
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if self.capacity == 0 or len(global_ids) == 0:
            return np.zeros(len(global_ids), dtype=bool), np.zeros(len(global_ids), dtype=np.int64)
        pos = np.searchsorted(self._sorted_ids, global_ids)
        pos_clamped = np.minimum(pos, self.capacity - 1)
        hit_mask = self._sorted_ids[pos_clamped] == global_ids
        slots = np.where(hit_mask, self._order[pos_clamped], 0).astype(np.int64)
        return hit_mask, slots

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        """Boolean membership mask."""
        hit_mask, _ = self.lookup(global_ids)
        return hit_mask

    def get_features(self, slots: np.ndarray) -> np.ndarray:
        """Feature rows stored at *slots*."""
        slots = check_1d_int_array(slots, "slots", max_value=max(1, self.capacity))
        return self._features[slots].copy()

    def get_features_by_id(self, global_ids: np.ndarray) -> np.ndarray:
        """Feature rows for resident *global_ids* (raises on a miss)."""
        hit_mask, slots = self.lookup(global_ids)
        if not np.all(hit_mask):
            missing = np.asarray(global_ids)[~hit_mask][:5]
            raise KeyError(f"nodes {missing.tolist()} are not resident in the buffer")
        return self._features[slots].copy()

    def slot_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Slot index of each resident id (raises on a miss)."""
        hit_mask, slots = self.lookup(global_ids)
        if not np.all(hit_mask):
            missing = np.asarray(global_ids)[~hit_mask][:5]
            raise KeyError(f"nodes {missing.tolist()} are not resident in the buffer")
        return slots

    # ------------------------------------------------------------------ #
    def replace(self, slots: np.ndarray, new_ids: np.ndarray, new_features: np.ndarray) -> None:
        """Swap out the nodes at *slots* for *new_ids* / *new_features*.

        Capacity never changes; the caller guarantees that ``new_ids`` are not
        already resident and are mutually unique.
        """
        slots = check_1d_int_array(slots, "slots", max_value=max(1, self.capacity))
        new_ids = check_1d_int_array(new_ids, "new_ids")
        new_features = check_2d_float_array(new_features, "new_features", columns=self.feature_dim)
        if not (len(slots) == len(new_ids) == len(new_features)):
            raise ValueError("slots, new_ids and new_features must align")
        if len(slots) == 0:
            return
        if len(np.unique(slots)) != len(slots):
            raise ValueError("slots must be unique")
        if len(np.unique(new_ids)) != len(new_ids):
            raise ValueError("new_ids must be unique")
        resident = self.contains(new_ids)
        if np.any(resident):
            dup = new_ids[resident][:5]
            raise ValueError(f"nodes {dup.tolist()} are already resident in the buffer")
        self._slot_ids[slots] = new_ids
        self._features[slots] = new_features
        self._rebuild_index()

    def update_features(self, global_ids: np.ndarray, features: np.ndarray) -> None:
        """Refresh features of already-resident nodes (no membership change)."""
        slots = self.slot_of(global_ids)
        features = check_2d_float_array(features, "features", columns=self.feature_dim)
        self._features[slots] = features
