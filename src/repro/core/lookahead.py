"""Look-ahead minibatch queue (Algorithm 1's ``Q``) and its timing model.

The paper's training loop keeps a queue of prepared minibatches: while the
current minibatch trains, worker threads prepare the next one(s) and push them
into ``Q``; the trainer pops a ready minibatch at the start of every step and
only blocks when the queue is empty.  The shipped configuration uses a single
look-ahead minibatch (``ThreadPoolExecutor`` with one worker), but the paper's
summary explicitly calls deeper look-ahead a path toward a "sustainable
perfect overlap" on GPU systems.

This module provides that generalization as an analyzable component:

* :class:`LookaheadQueue` — a simulated-time queue of prepared minibatches:
  preparation work is submitted with a duration, and pops report how long the
  trainer stalls waiting for the head-of-queue preparation to finish;
* :func:`steady_state_step_time` — closed-form steady-state step time with
  ``k`` preparation workers (Eq. 5 generalizes to ``max(t_prepare / k, t_DDP)``
  when preparations are independent and pipelined);
* :func:`simulate_lookahead` — discrete simulation over per-step preparation /
  training durations, used to validate the closed form and to explore deeper
  look-ahead in benchmarks and tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.utils.validation import check_positive


@dataclass
class PreparedMinibatch:
    """A queue entry: an opaque payload plus the simulated time it becomes ready."""

    payload: object
    ready_at: float
    prepare_time: float


@dataclass
class LookaheadStats:
    """Aggregate queue behaviour over a run."""

    pops: int = 0
    total_stall: float = 0.0
    max_queue_depth: int = 0

    @property
    def mean_stall(self) -> float:
        return self.total_stall / self.pops if self.pops else 0.0


class LookaheadQueue:
    """Simulated-time queue of prepared minibatches.

    Parameters
    ----------
    capacity:
        Maximum number of minibatches that may be prepared ahead (the paper's
        look-ahead count).  Submissions beyond the capacity are rejected until
        a pop frees a slot — this is the back-pressure that bounds memory.
    workers:
        Number of concurrent preparation workers.  With one worker,
        preparations are serialized (the shipped configuration); with more,
        preparation of consecutive minibatches overlaps.
    """

    def __init__(self, capacity: int = 1, workers: int = 1):
        check_positive(capacity, "capacity")
        check_positive(workers, "workers")
        self.capacity = int(capacity)
        self.workers = int(workers)
        self._queue: Deque[PreparedMinibatch] = deque()
        self._worker_free_at: List[float] = [0.0] * self.workers
        self.stats = LookaheadStats()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    def submit(self, payload: object, prepare_time: float, now: float) -> PreparedMinibatch:
        """Schedule preparation of *payload* starting no earlier than *now*.

        The preparation runs on the earliest-free worker; the entry enters the
        queue immediately with its future ``ready_at`` timestamp.
        """
        if prepare_time < 0:
            raise ValueError("prepare_time must be non-negative")
        if self.is_full:
            raise RuntimeError(
                f"look-ahead queue is full (capacity={self.capacity}); pop before submitting"
            )
        worker = min(range(self.workers), key=lambda i: self._worker_free_at[i])
        start = max(now, self._worker_free_at[worker])
        ready_at = start + prepare_time
        self._worker_free_at[worker] = ready_at
        entry = PreparedMinibatch(payload=payload, ready_at=ready_at, prepare_time=prepare_time)
        self._queue.append(entry)
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        return entry

    def pop(self, now: float) -> Tuple[object, float]:
        """Pop the oldest prepared minibatch.

        Returns ``(payload, stall)`` where ``stall`` is how long the trainer
        must wait past *now* for the entry to become ready (0 when the
        preparation already finished — the overlap succeeded).
        """
        if not self._queue:
            raise RuntimeError("look-ahead queue is empty")
        entry = self._queue.popleft()
        stall = max(0.0, entry.ready_at - now)
        self.stats.pops += 1
        self.stats.total_stall += stall
        return entry.payload, stall

    def peek_ready_at(self) -> Optional[float]:
        """Ready timestamp of the head entry (None when empty)."""
        return self._queue[0].ready_at if self._queue else None


# --------------------------------------------------------------------------- #
# Analytical and simulated steady-state behaviour
# --------------------------------------------------------------------------- #
def steady_state_step_time(t_prepare: float, t_ddp: float, lookahead: int = 1) -> float:
    """Steady-state per-step time with *lookahead* independent preparation workers.

    With one worker this is exactly Eq. 5, ``max(t_prepare, t_DDP)``.  With
    ``k`` workers, ``k`` preparations proceed concurrently while one minibatch
    trains, so the pipeline's bottleneck is ``max(t_prepare / k, t_DDP)``.
    """
    check_positive(lookahead, "lookahead")
    if t_prepare < 0 or t_ddp < 0:
        raise ValueError("times must be non-negative")
    return max(t_prepare / lookahead, t_ddp)


def simulate_lookahead(
    prepare_times: Sequence[float],
    train_times: Sequence[float],
    lookahead: int = 1,
    workers: Optional[int] = None,
) -> Tuple[float, LookaheadStats]:
    """Discrete simulation of the look-ahead pipeline.

    ``prepare_times[i]`` / ``train_times[i]`` are the preparation and DDP
    training durations of minibatch *i*.  Returns the total simulated time and
    the queue statistics.  The first minibatch cannot be overlapped (Eq. 4);
    afterwards the queue keeps up to *lookahead* minibatches in flight.
    """
    if len(prepare_times) != len(train_times):
        raise ValueError("prepare_times and train_times must align")
    if len(prepare_times) == 0:
        return 0.0, LookaheadStats()
    queue = LookaheadQueue(capacity=lookahead, workers=workers or lookahead)

    now = 0.0
    # Minibatch 0 must be prepared synchronously (nothing to overlap with).
    now += prepare_times[0]
    next_to_submit = 1
    # Fill the look-ahead window before training starts on minibatch 0.
    while next_to_submit < len(prepare_times) and not queue.is_full:
        queue.submit(next_to_submit, prepare_times[next_to_submit], now)
        next_to_submit += 1

    for step in range(len(train_times)):
        # Train the current minibatch.
        now += train_times[step]
        # The step after this one must be ready; pop it (possibly stalling).
        if step + 1 < len(train_times):
            payload, stall = queue.pop(now)
            now += stall
            # Refill the window with the next unprepared minibatch.
            if next_to_submit < len(prepare_times):
                queue.submit(next_to_submit, prepare_times[next_to_submit], now)
                next_to_submit += 1
    return now, queue.stats


def lookahead_benefit(
    t_prepare: float, t_ddp: float, max_lookahead: int = 4, num_steps: int = 200
) -> List[Tuple[int, float]]:
    """Total time as a function of the look-ahead depth (for the extension study).

    Returns ``[(k, total_time), ...]`` for ``k = 1 .. max_lookahead`` using the
    discrete simulation with constant per-step times.
    """
    check_positive(num_steps, "num_steps")
    out: List[Tuple[int, float]] = []
    prepare = [t_prepare] * num_steps
    train = [t_ddp] * num_steps
    for k in range(1, max_lookahead + 1):
        total, _ = simulate_lookahead(prepare, train, lookahead=k)
        out.append((k, total))
    return out
