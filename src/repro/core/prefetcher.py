"""The MassiveGNN prefetcher (Algorithms 1 & 2 of the paper).

One :class:`Prefetcher` exists per trainer PE.  Its job during training is:

1. **Initialization** (``INITIALIZE_PREFETCHER``): select the top ``f_h``
   percent of the partition's halo nodes by degree, pull their features over
   RPC once, and place them in a fixed-capacity :class:`PrefetchBuffer`.
   Eviction scores ``S_E`` start at 1 for buffered nodes; access scores
   ``S_A`` start at −1 for buffered nodes and 0 for the remaining halo nodes.

2. **Per minibatch** (``PREFETCH_WITH_EVICTION``): split the sampled halo
   nodes into buffer *hits* (served locally, no RPC) and *misses* (fetched
   over RPC).  Unsampled buffer slots have their ``S_E`` decayed by γ; missed
   nodes have their ``S_A`` incremented.  Every Δ steps an eviction round
   replaces the slots whose ``S_E`` fell below α with the highest-``S_A``
   (degree tie-broken) missed nodes, swapping the scores of the evicted and
   replacement nodes as described in Section IV-B.

The prefetcher returns, for every step, both the assembled halo features and
the *operation counts* (lookups, score updates, nodes fetched, slots replaced)
that the training engine converts into simulated time via the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cache.tier import CacheTier
from repro.core.buffer import PrefetchBuffer
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy, build_eviction_policy
from repro.core.metrics import HitRateTracker, PrefetchCounters
from repro.core.scoreboard import EvictionScores, make_access_scoreboard
from repro.distributed.rpc import RPCChannel
from repro.graph.halo import GraphPartition
from repro.utils.validation import check_1d_int_array


@dataclass
class PrefetchInitReport:
    """Outcome of buffer initialization (Fig. 8's one-time cost)."""

    num_prefetched: int
    buffer_capacity: int
    rpc_time_s: float
    bytes_fetched: int
    buffer_nbytes: int
    scoreboard_nbytes: int
    num_halo_nodes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_prefetched": float(self.num_prefetched),
            "buffer_capacity": float(self.buffer_capacity),
            "rpc_time_s": self.rpc_time_s,
            "bytes_fetched": float(self.bytes_fetched),
            "buffer_nbytes": float(self.buffer_nbytes),
            "scoreboard_nbytes": float(self.scoreboard_nbytes),
            "num_halo_nodes": float(self.num_halo_nodes),
        }


@dataclass
class PrefetchStepResult:
    """Per-minibatch outcome of ``PREFETCH_WITH_EVICTION``."""

    features: np.ndarray                 # rows aligned with the requested halo ids
    num_requested: int
    num_hits: int
    num_misses: int
    rpc_time_s: float                    # simulated time of this step's remote pulls
    remote_nodes_fetched: int            # misses + replacement fetches this step
    lookup_nodes: int                    # membership tests performed
    scoring_nodes: int                   # S_E decays + S_A increments performed
    eviction_round: bool = False
    nodes_evicted: int = 0
    nodes_replaced: int = 0
    buffer_capacity: int = 0
    # Machine-shared cache tier traffic (zero unless the prefetcher's miss
    # path routes through a shared tier; see Prefetcher(shared_tier=...)).
    shared_tier_hits: int = 0
    shared_tier_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.num_hits + self.num_misses
        return self.num_hits / total if total else 0.0


class Prefetcher:
    """Continuous prefetch-and-eviction manager for one trainer."""

    def __init__(
        self,
        partition: GraphPartition,
        config: PrefetchConfig,
        rpc: RPCChannel,
        num_global_nodes: int,
        global_degrees: Optional[np.ndarray] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        shared_tier: Optional[CacheTier] = None,
    ):
        self.partition = partition
        self.config = config
        self.rpc = rpc
        # Optional machine-shared cache tier in front of the RPC channel
        # (and hence in front of the batched channel's coalescing window):
        # rows another trainer on the machine already pulled are served from
        # shared memory instead of the wire.  None (the default) keeps the
        # miss path — and every golden-pinned counter — bit-identical.
        self.shared_tier = shared_tier
        self.num_global_nodes = int(num_global_nodes)
        # Fall back to the policy named in the config ("score-threshold" by
        # default — the paper's Algorithm 2).
        self.eviction_policy = eviction_policy or build_eviction_policy(config.eviction_policy)
        # Degrees indexed by global id (needed for init and replacement ties).
        if global_degrees is not None:
            self._global_degrees = np.asarray(global_degrees, dtype=np.int64)
        else:
            degrees = np.zeros(num_global_nodes, dtype=np.int64)
            degrees[partition.local_to_global] = partition.global_degrees
            self._global_degrees = degrees

        self.buffer: Optional[PrefetchBuffer] = None
        self.eviction_scores: Optional[EvictionScores] = None
        self.access_scores = None
        self._last_hit_step: Optional[np.ndarray] = None
        self.tracker = HitRateTracker()
        self.counters = PrefetchCounters()
        self._initialized = False

    # ------------------------------------------------------------------ #
    # Initialization (Algorithm 1, INITIALIZE_PREFETCHER)
    # ------------------------------------------------------------------ #
    def initialize(self) -> PrefetchInitReport:
        """Populate the buffer with the highest-degree halo nodes (one-time RPC)."""
        halo = self.partition.halo_global
        capacity = self.config.buffer_capacity(len(halo))
        feature_dim = self.rpc.servers[self.rpc.local_part].feature_dim

        if len(halo) == 0 or capacity == 0:
            self.buffer = PrefetchBuffer.empty(feature_dim)
            self.eviction_scores = EvictionScores(0, self.config.initial_eviction_score)
            self.access_scores = make_access_scoreboard(
                self.config.scoreboard, self.num_global_nodes, halo
            )
            self._last_hit_step = np.zeros(0, dtype=np.int64)
            self._initialized = True
            return PrefetchInitReport(
                num_prefetched=0,
                buffer_capacity=0,
                rpc_time_s=0.0,
                bytes_fetched=0,
                buffer_nbytes=self.buffer.nbytes(),
                scoreboard_nbytes=self.access_scores.nbytes(),
                num_halo_nodes=0,
            )

        halo_degrees = self._global_degrees[halo]
        order = np.argsort(-halo_degrees, kind="stable")
        selected = np.sort(halo[order[:capacity]])

        owners = self.partition.halo_owners_of(selected)
        rows, rpc_time, delta = self.rpc.remote_pull(selected, owners)

        self.buffer = PrefetchBuffer(selected, rows)
        self.eviction_scores = EvictionScores(capacity, self.config.initial_eviction_score)
        self.access_scores = make_access_scoreboard(
            self.config.scoreboard, self.num_global_nodes, halo
        )
        # S_A = -1 for buffered nodes, 0 for the remaining halo nodes.
        self.access_scores.set(selected, np.full(len(selected), -1.0))
        self._last_hit_step = np.zeros(capacity, dtype=np.int64)
        self.counters.remote_nodes_at_init = int(len(selected))
        self.counters.remote_nodes_fetched += int(len(selected))
        self._initialized = True
        return PrefetchInitReport(
            num_prefetched=int(len(selected)),
            buffer_capacity=capacity,
            rpc_time_s=rpc_time,
            bytes_fetched=delta.bytes_fetched,
            buffer_nbytes=self.buffer.nbytes(),
            scoreboard_nbytes=self.access_scores.nbytes() + self.eviction_scores.nbytes(),
            num_halo_nodes=int(len(halo)),
        )

    # ------------------------------------------------------------------ #
    # Per-minibatch processing (Algorithm 2)
    # ------------------------------------------------------------------ #
    def process_minibatch(self, halo_global_ids: np.ndarray, step: int) -> PrefetchStepResult:
        """Serve the sampled halo nodes of one minibatch.

        ``halo_global_ids`` are the remotely owned nodes the sampler returned
        for this minibatch (``V_p^{h|s}`` in Algorithm 2); the result's
        ``features`` rows align with the input order.
        """
        self._require_initialized()
        halo_global_ids = check_1d_int_array(halo_global_ids, "halo_global_ids")
        feature_dim = self.buffer.feature_dim
        features = np.zeros((len(halo_global_ids), feature_dim), dtype=np.float32)

        hit_mask, slots = self.buffer.lookup(halo_global_ids)
        hit_rows = np.nonzero(hit_mask)[0]
        miss_rows = np.nonzero(~hit_mask)[0]
        hits_ids = halo_global_ids[hit_rows]
        miss_ids = halo_global_ids[miss_rows]

        if len(hit_rows):
            features[hit_rows] = self.buffer.get_features(slots[hit_rows])
            self._last_hit_step[slots[hit_rows]] = step

        # Decay S_E of buffer slots whose nodes were not sampled this step.
        sampled_in_buffer = np.zeros(self.buffer.capacity, dtype=bool)
        if len(hit_rows):
            sampled_in_buffer[slots[hit_rows]] = True
        unused_mask = ~sampled_in_buffer
        self.eviction_scores.decay(unused_mask, self.config.gamma)

        scoring_nodes = int(unused_mask.sum())
        lookup_nodes = int(len(halo_global_ids)) + self.buffer.capacity
        rpc_time = 0.0
        remote_fetched = 0
        eviction_round = False
        nodes_evicted = 0
        nodes_replaced = 0

        eviction_round = (
            self.config.eviction_enabled
            and self.buffer.capacity > 0
            and step > 0
            and step % self.config.delta == 0
        )

        # Misses update S_A first in every step kind — on eviction steps this
        # happens before the eviction assessment, so fresh demand influences
        # the replacement choice.
        unique_miss, miss_counts = np.unique(miss_ids, return_counts=True)
        if len(unique_miss):
            self._increment_access(unique_miss, miss_counts)
            scoring_nodes += len(unique_miss)

        evict_slots = np.zeros(0, dtype=np.int64)
        replacement_ids = np.zeros(0, dtype=np.int64)
        if eviction_round:
            self.counters.eviction_rounds += 1
            evict_slots, replacement_ids = self._plan_eviction(step)
            nodes_evicted = len(evict_slots)
            nodes_replaced = len(replacement_ids)

        # One combined RPC serves both this step's misses and the eviction
        # round's replacement rows (union1d keeps the ids sorted and unique).
        shared_hits = 0
        fetch_ids = np.union1d(unique_miss, replacement_ids)
        if len(fetch_ids):
            rows, rpc_time, wire_rows = self._fetch_remote(fetch_ids, step)
            remote_fetched = wire_rows
            shared_hits = int(len(fetch_ids)) - wire_rows
            if len(miss_rows):
                features[miss_rows] = rows[np.searchsorted(fetch_ids, miss_ids)]
            if len(replacement_ids):
                repl_rows = rows[np.searchsorted(fetch_ids, replacement_ids)]
                self._apply_eviction(evict_slots, replacement_ids, repl_rows, step)
        self.counters.remote_nodes_for_misses += int(len(unique_miss))
        self.counters.remote_nodes_for_replacement += int(nodes_replaced)

        self.counters.remote_nodes_fetched += int(remote_fetched)
        self.counters.nodes_evicted += int(nodes_evicted)
        self.counters.halo_nodes_sampled += int(len(halo_global_ids))
        self.tracker.record(len(hit_rows), len(miss_rows), eviction=eviction_round)

        return PrefetchStepResult(
            features=features,
            num_requested=int(len(halo_global_ids)),
            num_hits=int(len(hit_rows)),
            num_misses=int(len(miss_rows)),
            rpc_time_s=rpc_time,
            remote_nodes_fetched=int(remote_fetched),
            lookup_nodes=lookup_nodes,
            scoring_nodes=scoring_nodes,
            eviction_round=eviction_round,
            nodes_evicted=int(nodes_evicted),
            nodes_replaced=int(nodes_replaced),
            buffer_capacity=self.buffer.capacity,
            shared_tier_hits=shared_hits,
            shared_tier_misses=int(remote_fetched) if self.shared_tier is not None else 0,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        return self.tracker.cumulative_hit_rate

    def buffer_nbytes(self) -> int:
        self._require_initialized()
        return self.buffer.nbytes()

    def scoreboard_nbytes(self) -> int:
        self._require_initialized()
        return int(self.access_scores.nbytes() + self.eviction_scores.nbytes())

    def resident_nodes(self) -> np.ndarray:
        self._require_initialized()
        return self.buffer.node_ids

    def summary(self) -> Dict[str, float]:
        self._require_initialized()
        out = {
            "hit_rate": self.hit_rate,
            "buffer_capacity": float(self.buffer.capacity),
            "buffer_nbytes": float(self.buffer.nbytes()),
            "scoreboard_nbytes": float(self.scoreboard_nbytes()),
        }
        out.update({k: float(v) for k, v in self.counters.as_dict().items()})
        return out

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_initialized(self) -> None:
        if not self._initialized:
            raise RuntimeError("Prefetcher.initialize() must be called before use")

    def _increment_access(self, unique_ids: np.ndarray, counts: np.ndarray) -> None:
        """Add the per-node miss counts to S_A (buffered nodes keep their -1)."""
        current = self.access_scores.get(unique_ids)
        self.access_scores.set(unique_ids, current + counts.astype(np.float64))

    def _fetch_remote(self, global_ids: np.ndarray, step: int) -> Tuple[np.ndarray, float, int]:
        """Pull *global_ids* from their owning partitions over RPC.

        Returns ``(rows, simulated_rpc_time, wire_rows)`` where ``wire_rows``
        is how many rows actually crossed the network — fewer than requested
        when a machine-shared cache tier serves part of the pull.  Ownership
        resolution validates halo membership: a non-halo id would previously
        map to an arbitrary neighbor's owner (wrong-owner routing); now it
        raises ``KeyError`` naming the offending ids.
        """
        if self.shared_tier is None:
            owners = self.partition.halo_owners_of(global_ids)
            rows, rpc_time, _ = self.rpc.remote_pull(global_ids, owners)
            return rows, rpc_time, int(len(global_ids))

        rows = np.zeros((len(global_ids), self.buffer.feature_dim), dtype=np.float32)
        hit_mask, hit_rows = self.shared_tier.lookup(global_ids, step)
        if len(hit_rows):
            rows[hit_mask] = hit_rows
        missing = global_ids[~hit_mask]
        rpc_time = 0.0
        if len(missing):
            owners = self.partition.halo_owners_of(missing)
            fetched, rpc_time, _ = self.rpc.remote_pull(missing, owners)
            rows[~hit_mask] = fetched
            self.shared_tier.admit(missing, fetched, step)
        return rows, rpc_time, int(len(missing))

    def _plan_eviction(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """Choose eviction slots and replacement node ids (EVICT_AND_REPLACE)."""
        evict_slots = self.eviction_policy.select(
            self.eviction_scores, self.config.effective_alpha, self._last_hit_step, step
        )
        if len(evict_slots) == 0:
            return evict_slots, np.zeros(0, dtype=np.int64)
        replacements = self.access_scores.top_candidates(
            len(evict_slots), exclude=self.buffer.node_ids, degrees=self._global_degrees
        )
        # Only keep replacements with positive demand (S_A > 0): replacing an
        # unused slot with a never-missed node would be pure overhead.
        if len(replacements):
            scores = self.access_scores.get(replacements)
            replacements = replacements[scores > 0]
        # The number of replacements must equal the number of evictions to keep
        # the buffer size constant; trim evictions if not enough candidates.
        count = min(len(evict_slots), len(replacements))
        return evict_slots[:count], replacements[:count]

    def _apply_eviction(
        self,
        evict_slots: np.ndarray,
        replacement_ids: np.ndarray,
        replacement_rows: np.ndarray,
        step: int,
    ) -> None:
        """Swap evicted nodes for replacements, exchanging their scores."""
        if len(evict_slots) == 0:
            return
        evicted_ids = self.buffer.node_ids[evict_slots]
        evicted_se = self.eviction_scores.get(evict_slots)
        replacement_sa = self.access_scores.get(replacement_ids)

        self.buffer.replace(evict_slots, replacement_ids, replacement_rows)
        # Swap scores (Section IV-B): the evicted nodes' S_A becomes their last
        # S_E; the replacements' S_E becomes their last S_A (clamped to at least
        # the initial value so fresh slots are not immediately evicted again).
        self.access_scores.set(evicted_ids, evicted_se)
        new_se = np.maximum(replacement_sa, self.config.initial_eviction_score)
        self.eviction_scores.set(evict_slots, new_se)
        self.access_scores.set(replacement_ids, np.full(len(replacement_ids), -1.0))
        self._last_hit_step[evict_slots] = step
