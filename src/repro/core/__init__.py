"""MassiveGNN core: parameterized continuous prefetch and eviction."""

from repro.core.buffer import PrefetchBuffer
from repro.core.config import (
    PAPER_DELTAS,
    PAPER_GAMMAS,
    PAPER_HALO_FRACTIONS,
    PrefetchConfig,
)
from repro.core.lookahead import (
    LookaheadQueue,
    LookaheadStats,
    PreparedMinibatch,
    lookahead_benefit,
    simulate_lookahead,
    steady_state_step_time,
)
from repro.core.eviction import (
    EVICTION_POLICIES,
    EvictionPolicy,
    LRUPolicy,
    NoEvictionPolicy,
    RandomEvictionPolicy,
    ScoreThresholdPolicy,
    build_eviction_policy,
)
from repro.core.metrics import (
    HitRateTracker,
    PrefetchCounters,
    hit_rate,
    merge_hit_trackers,
)
from repro.core.prefetcher import (
    Prefetcher,
    PrefetchInitReport,
    PrefetchStepResult,
)
from repro.core.scoreboard import (
    AccessScoreboard,
    CompactAccessScoreboard,
    DenseAccessScoreboard,
    EvictionScores,
    make_access_scoreboard,
)

__all__ = [
    "PrefetchBuffer",
    "LookaheadQueue",
    "LookaheadStats",
    "PreparedMinibatch",
    "lookahead_benefit",
    "simulate_lookahead",
    "steady_state_step_time",
    "PAPER_DELTAS",
    "PAPER_GAMMAS",
    "PAPER_HALO_FRACTIONS",
    "PrefetchConfig",
    "EVICTION_POLICIES",
    "EvictionPolicy",
    "LRUPolicy",
    "NoEvictionPolicy",
    "RandomEvictionPolicy",
    "ScoreThresholdPolicy",
    "build_eviction_policy",
    "HitRateTracker",
    "PrefetchCounters",
    "hit_rate",
    "merge_hit_trackers",
    "Prefetcher",
    "PrefetchInitReport",
    "PrefetchStepResult",
    "AccessScoreboard",
    "CompactAccessScoreboard",
    "DenseAccessScoreboard",
    "EvictionScores",
    "make_access_scoreboard",
]
