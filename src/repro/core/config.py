"""Configuration of the prefetch-and-eviction scheme.

The paper parameterizes the scheme with three knobs (Table I):

* ``f_h`` — the fraction of a partition's halo nodes whose features are
  prefetched into the buffer at initialization (buffer capacity);
* ``γ`` (``gamma``) — the per-minibatch decay applied to the eviction score of
  buffered nodes that were *not* sampled;
* ``Δ`` (``delta``) — the eviction interval: every Δ minibatch steps an
  eviction round replaces under-used buffer slots with the hottest missed
  nodes.

The eviction threshold follows Eq. 1: ``α = S_E(init) · γ^Δ`` — a buffered
node is evicted if it went unused for (roughly) a full interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_fraction, check_positive


@dataclass
class PrefetchConfig:
    """Parameters of the continuous prefetch and eviction scheme."""

    halo_fraction: float = 0.25
    gamma: float = 0.995
    delta: int = 64
    eviction_enabled: bool = True
    alpha: Optional[float] = None
    scoreboard: str = "dense"
    look_ahead: int = 1
    initial_eviction_score: float = 1.0
    min_buffer_slots: int = 1
    # Registry names (see repro.core.eviction.EVICTION_POLICIES and
    # repro.features.FEATURE_SOURCES): which eviction policy the prefetcher
    # builds by default, and which source serves the halo data path in the
    # prefetch pipeline.
    eviction_policy: str = "score-threshold"
    halo_source: str = "buffered"

    def __post_init__(self) -> None:
        check_fraction(self.halo_fraction, "halo_fraction")
        check_fraction(self.gamma, "gamma", inclusive_low=False)
        check_positive(self.delta, "delta")
        check_positive(self.look_ahead, "look_ahead")
        check_positive(self.initial_eviction_score, "initial_eviction_score")
        if self.scoreboard not in ("dense", "compact"):
            raise ValueError(f"scoreboard must be 'dense' or 'compact', got {self.scoreboard!r}")
        if self.alpha is not None and self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        # Resolve registry names eagerly so a typo fails at construction, not
        # mid-run.  Both registries are imported lazily because their modules
        # sit above repro.core in the import graph.
        from repro.core.eviction import EVICTION_POLICIES

        EVICTION_POLICIES.resolve(self.eviction_policy)
        from repro.features.sources import FEATURE_SOURCES

        FEATURE_SOURCES.resolve(self.halo_source)

    @property
    def effective_alpha(self) -> float:
        """Eviction threshold; defaults to Eq. 1, ``α = S_E(init) · γ^Δ``."""
        if self.alpha is not None:
            return float(self.alpha)
        return float(self.initial_eviction_score * (self.gamma ** self.delta))

    def buffer_capacity(self, num_halo_nodes: int) -> int:
        """Number of buffer slots for a partition with *num_halo_nodes* halo nodes."""
        if num_halo_nodes <= 0:
            return 0
        return max(self.min_buffer_slots, int(round(self.halo_fraction * num_halo_nodes)))

    def without_eviction(self) -> "PrefetchConfig":
        """Copy of this config with eviction disabled (prefetch-only variant)."""
        return PrefetchConfig(
            halo_fraction=self.halo_fraction,
            gamma=self.gamma,
            delta=self.delta,
            eviction_enabled=False,
            alpha=self.alpha,
            scoreboard=self.scoreboard,
            look_ahead=self.look_ahead,
            initial_eviction_score=self.initial_eviction_score,
            min_buffer_slots=self.min_buffer_slots,
            eviction_policy=self.eviction_policy,
            halo_source=self.halo_source,
        )

    def describe(self) -> str:
        """Short human-readable descriptor (used in benchmark table rows)."""
        evict = f"gamma={self.gamma}, delta={self.delta}" if self.eviction_enabled else "no-evict"
        return f"f_h={self.halo_fraction}, {evict}"


# Values of f_h, Δ and γ explored by the paper's evaluation (Section V).
PAPER_HALO_FRACTIONS = (0.15, 0.25, 0.35, 0.50)
PAPER_DELTAS = (16, 32, 64, 128, 512, 1024)
PAPER_GAMMAS = (0.95, 0.995, 0.9995)
