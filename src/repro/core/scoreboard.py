"""Access and eviction scoreboards (Section IV-B of the paper).

Two scores drive the prefetch buffer's maintenance:

* the **access score** ``S_A`` counts, for every halo node of the partition,
  how many times it was sampled but missed in the buffer — high ``S_A`` nodes
  are the best replacement candidates;
* the **eviction score** ``S_E`` lives per buffer slot, starts at 1, and is
  multiplied by the decay factor γ every minibatch in which the slot's node
  was not sampled — slots that decay below the threshold α are evicted.

The paper ships two ``S_A`` layouts: a dense ``O(|V|)`` array with O(1)
indexing (fast but memory-hungry for huge graphs) and a memory-efficient
``O(|V_h^p|)`` array addressed by binary search over the sorted halo ids
(used for papers100M).  Both are provided here with an identical interface so
the prefetcher can switch between them via configuration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_1d_int_array, check_positive


class AccessScoreboard:
    """Interface for the S_A scoreboard."""

    def increment(self, global_ids: np.ndarray) -> None:
        raise NotImplementedError

    def get(self, global_ids: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def set(self, global_ids: np.ndarray, values: np.ndarray) -> None:
        raise NotImplementedError

    def top_candidates(
        self, k: int, exclude: Optional[np.ndarray] = None, degrees: Optional[np.ndarray] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def nbytes(self) -> int:
        raise NotImplementedError


class DenseAccessScoreboard(AccessScoreboard):
    """``O(|V|)`` dense S_A array: O(1) updates, large memory footprint.

    Only the partition's halo nodes are meaningful entries; the rest of the
    array exists purely to make indexing by global id constant-time, exactly
    as in the paper's standard implementation.
    """

    def __init__(self, num_global_nodes: int, halo_global: np.ndarray):
        check_positive(num_global_nodes, "num_global_nodes")
        self._halo = np.sort(check_1d_int_array(halo_global, "halo_global"))
        self._scores = np.full(num_global_nodes, np.nan, dtype=np.float64)
        self._scores[self._halo] = 0.0
        self._halo_degrees: Optional[np.ndarray] = None

    def increment(self, global_ids: np.ndarray) -> None:
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=len(self._scores))
        np.add.at(self._scores, global_ids, 1.0)

    def get(self, global_ids: np.ndarray) -> np.ndarray:
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=len(self._scores))
        return self._scores[global_ids].copy()

    def set(self, global_ids: np.ndarray, values: np.ndarray) -> None:
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=len(self._scores))
        self._scores[global_ids] = np.asarray(values, dtype=np.float64)

    def top_candidates(
        self, k: int, exclude: Optional[np.ndarray] = None, degrees: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Halo nodes with the highest S_A (ties broken by degree when given)."""
        if k <= 0:
            return np.zeros(0, dtype=np.int64)
        candidates = self._halo
        if exclude is not None and len(exclude):
            candidates = np.setdiff1d(candidates, exclude, assume_unique=False)
        if len(candidates) == 0:
            return np.zeros(0, dtype=np.int64)
        scores = self._scores[candidates]
        if degrees is not None:
            cand_deg = degrees[candidates].astype(np.float64)
            # Lexicographic: primary key S_A, secondary key degree.
            order = np.lexsort((-cand_deg, -scores))
        else:
            order = np.argsort(-scores, kind="stable")
        return candidates[order[:k]]

    def nbytes(self) -> int:
        return int(self._scores.nbytes)


class CompactAccessScoreboard(AccessScoreboard):
    """``O(|V_h^p|)`` memory-efficient S_A array addressed by binary search.

    Mirrors the paper's memory-efficient variant: the array only covers the
    partition's halo nodes (sorted by global id) and lookups cost
    ``O(log |V_h^p|)`` via ``searchsorted``.
    """

    def __init__(self, halo_global: np.ndarray):
        self._halo = np.sort(check_1d_int_array(halo_global, "halo_global"))
        self._scores = np.zeros(len(self._halo), dtype=np.float64)

    def _index(self, global_ids: np.ndarray) -> np.ndarray:
        global_ids = check_1d_int_array(global_ids, "global_ids")
        idx = np.searchsorted(self._halo, global_ids)
        if len(self._halo) == 0:
            raise KeyError("scoreboard has no halo nodes")
        idx_clamped = np.minimum(idx, len(self._halo) - 1)
        if np.any(self._halo[idx_clamped] != global_ids):
            missing = global_ids[self._halo[idx_clamped] != global_ids][:5]
            raise KeyError(f"nodes {missing.tolist()} are not halo nodes of this partition")
        return idx_clamped

    def increment(self, global_ids: np.ndarray) -> None:
        np.add.at(self._scores, self._index(global_ids), 1.0)

    def get(self, global_ids: np.ndarray) -> np.ndarray:
        return self._scores[self._index(global_ids)].copy()

    def set(self, global_ids: np.ndarray, values: np.ndarray) -> None:
        self._scores[self._index(global_ids)] = np.asarray(values, dtype=np.float64)

    def top_candidates(
        self, k: int, exclude: Optional[np.ndarray] = None, degrees: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if k <= 0 or len(self._halo) == 0:
            return np.zeros(0, dtype=np.int64)
        mask = np.ones(len(self._halo), dtype=bool)
        if exclude is not None and len(exclude):
            idx = np.searchsorted(self._halo, exclude)
            idx = idx[(idx < len(self._halo))]
            idx = idx[self._halo[idx] == np.asarray(exclude)[: len(idx)]] if len(idx) == len(exclude) else idx
            # Robust exclusion: recompute membership mask explicitly.
            mask = ~np.isin(self._halo, exclude, assume_unique=False)
        candidates = self._halo[mask]
        scores = self._scores[mask]
        if len(candidates) == 0:
            return np.zeros(0, dtype=np.int64)
        if degrees is not None:
            cand_deg = degrees[candidates].astype(np.float64)
            order = np.lexsort((-cand_deg, -scores))
        else:
            order = np.argsort(-scores, kind="stable")
        return candidates[order[:k]]

    def nbytes(self) -> int:
        return int(self._scores.nbytes + self._halo.nbytes)


class EvictionScores:
    """Per-buffer-slot eviction scores S_E with multiplicative decay."""

    def __init__(self, capacity: int, initial_value: float = 1.0):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._scores = np.full(capacity, float(initial_value), dtype=np.float64)
        self._initial = float(initial_value)

    @property
    def values(self) -> np.ndarray:
        return self._scores

    def decay(self, unused_mask: np.ndarray, gamma: float) -> None:
        """Multiply the scores of unused slots by gamma."""
        unused_mask = np.asarray(unused_mask, dtype=bool)
        if len(unused_mask) != len(self._scores):
            raise ValueError("unused_mask length must equal buffer capacity")
        self._scores[unused_mask] *= gamma

    def below_threshold(self, alpha: float) -> np.ndarray:
        """Slot indices whose eviction score dropped below *alpha*."""
        return np.nonzero(self._scores < alpha)[0].astype(np.int64)

    def get(self, slots: np.ndarray) -> np.ndarray:
        return self._scores[np.asarray(slots, dtype=np.int64)].copy()

    def set(self, slots: np.ndarray, values: np.ndarray) -> None:
        self._scores[np.asarray(slots, dtype=np.int64)] = np.asarray(values, dtype=np.float64)

    def reset(self, slots: np.ndarray, value: Optional[float] = None) -> None:
        self._scores[np.asarray(slots, dtype=np.int64)] = self._initial if value is None else value

    def nbytes(self) -> int:
        return int(self._scores.nbytes)


def make_access_scoreboard(
    kind: str, num_global_nodes: int, halo_global: np.ndarray
) -> AccessScoreboard:
    """Factory for the S_A scoreboard layout (``dense`` or ``compact``)."""
    if kind == "dense":
        return DenseAccessScoreboard(num_global_nodes, halo_global)
    if kind == "compact":
        return CompactAccessScoreboard(halo_global)
    raise ValueError(f"unknown scoreboard kind {kind!r}")
