"""One tier of the feature cache: a bounded id -> feature-row store.

A :class:`CacheTier` is the building block of the tiered cache stack: a
fixed-capacity (but resizable) mapping from global node id to feature row,
with a pluggable admission policy deciding what may enter and a pluggable
eviction policy deciding what leaves when the tier is full.

Storage mirrors :class:`~repro.core.buffer.PrefetchBuffer`'s sorted-index
idiom — resident ids are kept sorted so membership tests are a single
``np.searchsorted`` — but unlike the prefetch buffer a tier's capacity can
change at runtime (the adaptive controller re-splits tier budgets between
epochs) and each resident carries recency/frequency/reference metadata for
the LRU/LFU/CLOCK policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cache.policies import (
    build_admission_policy,
    build_cache_eviction_policy,
)
from repro.cache.scoring import (
    DistanceLookup,
    PrefetchScorer,
    ScoreRecord,
    active_decision_log,
    build_scorer,
)
from repro.utils.validation import check_1d_int_array

DegreeLookup = Callable[[np.ndarray], np.ndarray]


@dataclass
class TierStats:
    """Cumulative counters for one tier (mergeable into FetchStats)."""

    lookups: int = 0          # rows tested for membership
    hits: int = 0             # rows served from this tier
    misses: int = 0           # rows that fell through to the next level
    admissions: int = 0       # rows inserted after a miss fetch
    rejections: int = 0       # candidate rows the admission policy turned away
    evictions: int = 0        # resident rows displaced (including resize shrinks)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "lookups": float(self.lookups),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "admissions": float(self.admissions),
            "rejections": float(self.rejections),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> "TierStats":
        return TierStats(**{k: getattr(self, k) for k in
                            ("lookups", "hits", "misses", "admissions",
                             "rejections", "evictions")})

    def since(self, earlier: "TierStats") -> "TierStats":
        """Counter deltas relative to an *earlier* snapshot (interval stats)."""
        return TierStats(
            lookups=self.lookups - earlier.lookups,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            admissions=self.admissions - earlier.admissions,
            rejections=self.rejections - earlier.rejections,
            evictions=self.evictions - earlier.evictions,
        )


class CacheTier:
    """A bounded, policy-governed feature cache level.

    Parameters
    ----------
    name:
        Role label (``"hot"``, ``"shared"``); prefixes the tier's counters in
        fetch stats and summaries.
    capacity:
        Maximum resident rows.  Zero is legal: every lookup misses and every
        admission is rejected (the degenerate tier the edge-case tests pin).
    feature_dim:
        Width of the cached rows.
    admission / eviction:
        Registry names (see :mod:`repro.cache.policies`).
    degree_of:
        Optional global-id -> degree lookup used by the degree-aware policies;
        tiers without one fall back to zero degrees.
    scorer:
        Registry name (see :data:`repro.cache.scoring.SCORERS`) of the scorer
        built when either policy is score-based; ignored otherwise.
    distance_of:
        Optional global-id -> halo-distance lookup for the scorer's
        halo-distance feature (1-hop halo rows report 1).
    record_decisions:
        Record every scored admit/reject/evict decision as a
        :class:`~repro.cache.scoring.ScoreRecord` in :attr:`ledger`.  Forced
        on while a :func:`~repro.cache.scoring.capture_decisions` session is
        active (the ``repro explain`` replay path).  Recording never changes
        a decision.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        feature_dim: int,
        admission: str = "always",
        eviction: str = "lru",
        degree_of: Optional[DegreeLookup] = None,
        scorer: str = "decayed",
        distance_of: Optional[DistanceLookup] = None,
        record_decisions: bool = False,
    ):
        if capacity < 0:
            raise ValueError(f"tier capacity must be >= 0, got {capacity}")
        self.name = str(name)
        self.capacity = int(capacity)
        self.feature_dim = int(feature_dim)
        self.admission = build_admission_policy(admission)
        self.eviction = build_cache_eviction_policy(eviction)
        self.degree_of = degree_of
        self.stats = TierStats()
        self.clock_hand = 0  # persistent CLOCK sweep position
        self.last_step = 0   # latest step seen by lookup/admit (policies read it)

        self.scorer: Optional[PrefetchScorer] = None
        self.ledger: List[ScoreRecord] = []
        self.record_decisions = bool(record_decisions)
        if (getattr(self.admission, "requires_scorer", False)
                or getattr(self.eviction, "requires_scorer", False)):
            online = bool(getattr(self.admission, "online", False)
                          or getattr(self.eviction, "online", False))
            self.scorer = build_scorer(scorer, online=online, distance_of=distance_of)
            self.scorer.bind_degree_lookup(degree_of)
            log = active_decision_log()
            if log is not None:
                log.register(self)
                self.record_decisions = True

        self._ids = np.zeros(0, dtype=np.int64)
        self._rows = np.zeros((0, self.feature_dim), dtype=np.float32)
        self._last_access = np.zeros(0, dtype=np.int64)
        self._freq = np.zeros(0, dtype=np.int64)
        self._ref = np.zeros(0, dtype=bool)
        self._degrees = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Introspection (policies read these views)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(len(self._ids))

    @property
    def resident_ids(self) -> np.ndarray:
        return self._ids.copy()

    @property
    def resident_last_access(self) -> np.ndarray:
        return self._last_access

    @property
    def resident_freq(self) -> np.ndarray:
        return self._freq

    @property
    def resident_ref(self) -> np.ndarray:
        return self._ref

    @property
    def resident_degrees(self) -> np.ndarray:
        return self._degrees

    def nbytes(self) -> int:
        scorer_bytes = self.scorer.nbytes() if self.scorer is not None else 0
        return int(
            self._rows.nbytes + self._ids.nbytes + self._last_access.nbytes
            + self._freq.nbytes + self._ref.nbytes + self._degrees.nbytes
            + scorer_bytes
        )

    # ------------------------------------------------------------------ #
    # Scored-decision ledger
    # ------------------------------------------------------------------ #
    @property
    def recording(self) -> bool:
        """True when scored decisions are being appended to :attr:`ledger`."""
        return self.scorer is not None and self.record_decisions

    def record_decision(self, record: "ScoreRecord") -> None:
        """Append one decision to the ledger (no-op unless recording)."""
        if self.recording:
            self.ledger.append(record)

    def record_decisions_batch(
        self,
        step: int,
        candidate_ids: np.ndarray,
        admit_mask: np.ndarray,
        scores: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        threshold: float,
        mode: str,
        admit_reason: str,
        reject_reason: str,
    ) -> None:
        """Ledger one admission round's per-candidate admit/reject outcomes."""
        if not self.recording:
            return
        for i, node_id in enumerate(candidate_ids):
            admitted = bool(admit_mask[i])
            self.ledger.append(ScoreRecord(
                step=int(step), node_id=int(node_id),
                action="admit" if admitted else "reject", tier=self.name,
                score=float(scores[i]), lower_bound=float(lower[i]),
                upper_bound=float(upper[i]), threshold=float(threshold),
                mode=mode, reason=admit_reason if admitted else reject_reason,
            ))

    def end_epoch(self) -> None:
        """Epoch boundary: let a scored tier's online learner update weights."""
        if self.scorer is not None:
            self.scorer.end_epoch()

    def summary(self) -> Dict[str, float]:
        out = self.stats.as_dict()
        out["capacity"] = float(self.capacity)
        out["resident"] = float(self.size)
        out["nbytes"] = float(self.nbytes())
        return out

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(self, global_ids: np.ndarray, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """Membership test + hit service.

        Returns ``(hit_mask, rows)`` where ``rows`` holds the feature rows of
        the hits, aligned with ``global_ids[hit_mask]``.  Hits refresh the
        recency/frequency/reference metadata the eviction policies read.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        self.stats.lookups += int(len(global_ids))
        self.last_step = max(self.last_step, int(step))
        if self.size == 0 or len(global_ids) == 0:
            self.stats.misses += int(len(global_ids))
            if self.scorer is not None and len(global_ids):
                self.scorer.observe(global_ids, step,
                                    np.zeros(len(global_ids), dtype=bool))
            return (
                np.zeros(len(global_ids), dtype=bool),
                np.zeros((0, self.feature_dim), dtype=np.float32),
            )
        idx = np.minimum(np.searchsorted(self._ids, global_ids), self.size - 1)
        hit_mask = self._ids[idx] == global_ids
        hit_idx = idx[hit_mask]
        self.stats.hits += int(hit_mask.sum())
        self.stats.misses += int((~hit_mask).sum())
        if len(hit_idx):
            self._last_access[hit_idx] = step
            np.add.at(self._freq, hit_idx, 1)
            self._ref[hit_idx] = True
        if self.scorer is not None:
            # The request stream (hits AND misses) is the scorer's signal: a
            # not-yet-resident node must be able to build a score worth
            # admitting before it ever hits.
            self.scorer.observe(global_ids, step, hit_mask)
        # Advanced indexing already materializes a fresh array; no copy needed.
        return hit_mask, self._rows[hit_idx]

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        """Boolean membership mask (no metadata updates, no stats)."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if self.size == 0 or len(global_ids) == 0:
            return np.zeros(len(global_ids), dtype=bool)
        idx = np.minimum(np.searchsorted(self._ids, global_ids), self.size - 1)
        return self._ids[idx] == global_ids

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def seed(self, global_ids: np.ndarray, rows: np.ndarray, step: int = 0) -> None:
        """Initial population, bypassing the admission policy.

        Used for the one-time degree-ranked preload; *global_ids* must be
        unique and fit the capacity.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) > self.capacity:
            raise ValueError(
                f"seeding {len(global_ids)} rows into a capacity-{self.capacity} tier"
            )
        if len(np.unique(global_ids)) != len(global_ids):
            raise ValueError("seeded ids must be unique")
        order = np.argsort(global_ids, kind="stable")
        self._ids = global_ids[order].copy()
        self._rows = np.asarray(rows, dtype=np.float32)[order].copy()
        self._last_access = np.full(self.size, step, dtype=np.int64)
        self._freq = np.zeros(self.size, dtype=np.int64)
        self._ref = np.ones(self.size, dtype=bool)
        self._degrees = self._degrees_for(self._ids)

    def admit(self, global_ids: np.ndarray, rows: np.ndarray, step: int) -> int:
        """Offer fetched rows to the tier; returns how many were inserted.

        The admission policy filters the candidates, then the eviction policy
        makes room for whatever does not fit.  Candidates it cannot place
        (policy returned fewer victims than needed, e.g. ``none``) are
        dropped, counted as rejections.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            return 0
        self.last_step = max(self.last_step, int(step))
        rows = np.asarray(rows, dtype=np.float32)
        # Deduplicate the offer: promotion of a request that repeated an id
        # would otherwise insert the same id into two slots, silently wasting
        # capacity and breaking the unique-ids invariant seed() enforces.
        unique_ids, first = np.unique(global_ids, return_index=True)
        if len(unique_ids) != len(global_ids):
            global_ids, rows = unique_ids, rows[first]
        fresh = ~self.contains(global_ids)
        global_ids, rows = global_ids[fresh], rows[fresh]
        if len(global_ids) == 0 or self.capacity == 0:
            self.stats.rejections += int(len(global_ids))
            return 0

        degrees = self._degrees_for(global_ids)
        mask = self.admission.admit(self, global_ids, degrees)
        self.stats.rejections += int((~mask).sum())
        admitted, rows, degrees = global_ids[mask], rows[mask], degrees[mask]
        if len(admitted) == 0:
            return 0

        overflow = self.size + len(admitted) - self.capacity
        if overflow > 0:
            victims = self.eviction.select(self, overflow)
            if len(victims):
                self._remove(victims)
                self.stats.evictions += int(len(victims))
            room = self.capacity - self.size
            if room < len(admitted):
                # Not enough victims (e.g. the 'none' policy): keep the
                # highest-degree candidates, reject the rest.
                keep = np.sort(np.argsort(-degrees, kind="stable")[:room])
                self.stats.rejections += int(len(admitted) - len(keep))
                admitted, rows, degrees = admitted[keep], rows[keep], degrees[keep]
        if len(admitted) == 0:
            return 0
        self._insert(admitted, rows, degrees, step)
        self.stats.admissions += int(len(admitted))
        return int(len(admitted))

    def invalidate(self) -> int:
        """Drop every resident row (elastic partition migration, cold policy).

        Returns the number of rows dropped; they are counted as evictions so
        the ledger reconciles.  Capacity, policies, and the scorer survive —
        only the resident set goes cold.
        """
        dropped = self.size
        self._ids = np.zeros(0, dtype=np.int64)
        self._rows = np.zeros((0, self.feature_dim), dtype=np.float32)
        self._last_access = np.zeros(0, dtype=np.int64)
        self._freq = np.zeros(0, dtype=np.int64)
        self._ref = np.zeros(0, dtype=bool)
        self._degrees = np.zeros(0, dtype=np.int64)
        self.clock_hand = 0
        self.stats.evictions += dropped
        return dropped

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable tier contents: resident arrays, counters, capacity."""
        return {
            "capacity": self.capacity,
            "clock_hand": self.clock_hand,
            "last_step": self.last_step,
            "ids": self._ids.copy(),
            "rows": self._rows.copy(),
            "last_access": self._last_access.copy(),
            "freq": self._freq.copy(),
            "ref": self._ref.copy(),
            "degrees": self._degrees.copy(),
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rewind the tier to a :meth:`snapshot` (bit-exact resident set)."""
        self.capacity = int(state["capacity"])
        self.clock_hand = int(state["clock_hand"])
        self.last_step = int(state["last_step"])
        self._ids = state["ids"].copy()
        self._rows = state["rows"].copy()
        self._last_access = state["last_access"].copy()
        self._freq = state["freq"].copy()
        self._ref = state["ref"].copy()
        self._degrees = state["degrees"].copy()
        self.stats = state["stats"].snapshot()

    def resize(self, new_capacity: int, step: int = 0) -> int:
        """Change capacity; shrinking evicts overflow via the eviction policy.

        Returns the number of rows evicted.  When the eviction policy refuses
        to pick victims (``none``), the lowest-degree residents are dropped —
        a resize must always succeed or the controller's budget accounting
        breaks.
        """
        new_capacity = int(new_capacity)
        if new_capacity < 0:
            raise ValueError(f"tier capacity must be >= 0, got {new_capacity}")
        evicted = 0
        if self.size > new_capacity:
            overflow = self.size - new_capacity
            victims = self.eviction.select(self, overflow)
            if len(victims) < overflow:
                remaining = np.setdiff1d(
                    np.arange(self.size, dtype=np.int64), victims, assume_unique=False
                )
                order = np.argsort(self._degrees[remaining], kind="stable")
                extra = remaining[order[: overflow - len(victims)]]
                victims = np.concatenate([victims, extra])
            self._remove(np.unique(victims)[:overflow] if len(victims) > overflow
                         else np.unique(victims))
            evicted = overflow
            self.stats.evictions += overflow
        self.capacity = new_capacity
        return evicted

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _degrees_for(self, global_ids: np.ndarray) -> np.ndarray:
        if self.degree_of is None:
            return np.zeros(len(global_ids), dtype=np.int64)
        return np.asarray(self.degree_of(global_ids), dtype=np.int64)

    def _remove(self, indices: np.ndarray) -> None:
        self._ids = np.delete(self._ids, indices)
        self._rows = np.delete(self._rows, indices, axis=0)
        self._last_access = np.delete(self._last_access, indices)
        self._freq = np.delete(self._freq, indices)
        self._ref = np.delete(self._ref, indices)
        self._degrees = np.delete(self._degrees, indices)
        if self.size:
            self.clock_hand %= self.size
        else:
            self.clock_hand = 0

    def _insert(self, global_ids: np.ndarray, rows: np.ndarray,
                degrees: np.ndarray, step: int) -> None:
        at = np.searchsorted(self._ids, global_ids)
        self._ids = np.insert(self._ids, at, global_ids)
        self._rows = np.insert(self._rows, at, rows, axis=0)
        self._last_access = np.insert(self._last_access, at, step)
        self._freq = np.insert(self._freq, at, 0)
        self._ref = np.insert(self._ref, at, True)
        self._degrees = np.insert(self._degrees, at, degrees)
