"""Adaptive capacity control: re-split tier budgets from observed hit rates.

Each trainer owns a fixed row budget ``B`` (derived from the prefetch
config's halo fraction, exactly like the single-tier caches).  With two tiers
the budget is split between the trainer's private hot tier and the trainer's
*contribution* to the machine-shared tier; the shared tier's capacity is the
sum of its trainers' contributions, so every controller only ever moves its
own share and concurrent trainers cannot fight over the same slots.

At every epoch boundary the controller compares the tiers' hit rates over the
interval since its last adjustment and shifts capacity toward the tier with
the higher observed hit rate, bounded by ``max_shift_fraction`` per epoch and
a ``min_tier_fraction`` floor so neither tier starves.  With a single tier
(or ``adaptive=False`` in the config) the controller is never constructed and
the capacities are immutable — the bit-identical default path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.tier import CacheTier, TierStats


@dataclass
class CapacityAdjustment:
    """One epoch's re-split decision (kept for telemetry/benchmarks)."""

    epoch: int
    hot_hit_rate: float
    shared_hit_rate: float
    hot_capacity: int
    shared_contribution: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "epoch": float(self.epoch),
            "hot_hit_rate": self.hot_hit_rate,
            "shared_hit_rate": self.shared_hit_rate,
            "hot_capacity": float(self.hot_capacity),
            "shared_contribution": float(self.shared_contribution),
        }


class AdaptiveCapacityController:
    """Re-splits one trainer's row budget between its hot and shared tiers."""

    def __init__(
        self,
        hot_tier: CacheTier,
        shared_tier: CacheTier,
        total_budget: int,
        shared_contribution: int,
        min_tier_fraction: float = 0.1,
        max_shift_fraction: float = 0.25,
        hit_rate_epsilon: float = 0.05,
    ):
        if total_budget < 0:
            raise ValueError("total_budget must be >= 0")
        if not 0.0 <= min_tier_fraction <= 0.5:
            raise ValueError("min_tier_fraction must be in [0, 0.5]")
        if not 0.0 < max_shift_fraction <= 1.0:
            raise ValueError("max_shift_fraction must be in (0, 1]")
        self.hot_tier = hot_tier
        self.shared_tier = shared_tier
        self.total_budget = int(total_budget)
        self.shared_contribution = int(shared_contribution)
        self.min_tier_fraction = float(min_tier_fraction)
        self.max_shift_fraction = float(max_shift_fraction)
        self.hit_rate_epsilon = float(hit_rate_epsilon)
        self.history: List[CapacityAdjustment] = []
        self._hot_snapshot: TierStats = hot_tier.stats.snapshot()
        self._shared_snapshot: TierStats = shared_tier.stats.snapshot()
        self._epoch = 0

    # ------------------------------------------------------------------ #
    def end_epoch(self, step: int = 0) -> Optional[CapacityAdjustment]:
        """Observe the epoch's hit rates and re-split the budget.

        Returns the adjustment applied, or ``None`` when the interval carried
        no traffic (nothing to learn from) or the budget is zero (nothing to
        split).
        """
        hot = self.hot_tier.stats.since(self._hot_snapshot)
        shared = self.shared_tier.stats.since(self._shared_snapshot)
        self._hot_snapshot = self.hot_tier.stats.snapshot()
        self._shared_snapshot = self.shared_tier.stats.snapshot()
        self._epoch += 1
        if self.total_budget == 0:
            return None
        if hot.lookups == 0 and shared.lookups == 0:
            return None

        # Weight each tier by its interval hit rate, floored by epsilon so a
        # cold tier keeps a foothold and can recover later.  All roundings use
        # an explicit half-up rule (floor(x + 0.5)) rather than Python's
        # banker's round(): banker's rounding maps exact .5 targets to the
        # nearest even integer, which can flip the split ±1 row between epochs
        # with identical hit rates and break re-split determinism.
        hot_weight = hot.hit_rate + self.hit_rate_epsilon
        shared_weight = shared.hit_rate + self.hit_rate_epsilon
        target_hot = math.floor(
            self.total_budget * hot_weight / (hot_weight + shared_weight) + 0.5
        )

        floor = math.floor(self.min_tier_fraction * self.total_budget + 0.5)
        max_shift = max(1, math.floor(self.max_shift_fraction * self.total_budget + 0.5))
        current_hot = self.hot_tier.capacity
        target_hot = max(current_hot - max_shift, min(current_hot + max_shift, target_hot))
        target_hot = max(floor, min(self.total_budget - floor, target_hot))
        new_contribution = self.total_budget - target_hot

        if target_hot != current_hot:
            self.hot_tier.resize(target_hot, step)
            delta = new_contribution - self.shared_contribution
            self.shared_tier.resize(self.shared_tier.capacity + delta, step)
            self.shared_contribution = new_contribution

        adjustment = CapacityAdjustment(
            epoch=self._epoch,
            hot_hit_rate=hot.hit_rate,
            shared_hit_rate=shared.hit_rate,
            hot_capacity=self.hot_tier.capacity,
            shared_contribution=self.shared_contribution,
        )
        self.history.append(adjustment)
        return adjustment
