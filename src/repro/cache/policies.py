"""Admission and eviction policies for :class:`~repro.cache.tier.CacheTier`.

A tier makes two independent decisions, each pluggable by registry name:

* **admission** — when rows that missed arrive from the next level down,
  which of them deserve a slot?  (:data:`ADMISSION_POLICIES`)
* **eviction** — when the tier is full and must make room, which resident
  rows go?  (:data:`CACHE_EVICTION_POLICIES`)

These registries are deliberately separate from
:data:`repro.core.eviction.EVICTION_POLICIES`: that registry selects *buffer
slots* inside the MassiveGNN prefetcher's scored eviction rounds (Algorithm
2), while these policies govern the generic tiered feature cache that any
source can sit behind.  The shipped names cover the classic spectrum —
``static-degree`` (the pre-tier behavior: populate once by degree, never
churn), ``lru``, ``lfu``, ``clock`` (second chance), and ``degree-weighted``
(retain hubs) — so cache-stress scenarios can compare them by flipping a
string.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.cache.scoring import ScoredAdmission, ScoredEviction
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.tier import CacheTier


# --------------------------------------------------------------------------- #
# Admission
# --------------------------------------------------------------------------- #
class AdmissionPolicy(Protocol):
    """Decides which candidate rows may enter a tier after a miss fetch."""

    name: str

    def admit(self, tier: "CacheTier", candidate_ids: np.ndarray,
              candidate_degrees: np.ndarray) -> np.ndarray:
        """Boolean mask over *candidate_ids*: True = offer a slot."""
        ...


class AlwaysAdmit:
    """Every fetched row is offered a slot (classic demand-filled cache)."""

    name = "always"

    def admit(self, tier: "CacheTier", candidate_ids: np.ndarray,
              candidate_degrees: np.ndarray) -> np.ndarray:
        return np.ones(len(candidate_ids), dtype=bool)


class StaticDegreeAdmission:
    """Runtime admission is closed: the tier only holds its seeded contents.

    Paired with the ``none`` eviction policy this reproduces the pre-tier
    :class:`~repro.features.sources.StaticDegreeCacheSource` exactly — a
    degree-ranked population chosen once at initialization, never updated.
    """

    name = "static-degree"

    def admit(self, tier: "CacheTier", candidate_ids: np.ndarray,
              candidate_degrees: np.ndarray) -> np.ndarray:
        return np.zeros(len(candidate_ids), dtype=bool)


class DegreeWeightedAdmission:
    """Admit while there is free space; once full, only rows at or above the
    median resident degree.

    A cheap frequency proxy: high-degree nodes are sampled (and therefore
    missed) more often, so they are the candidates worth displacing a resident
    for.  Low-degree one-off misses are filtered out instead of churning the
    tier.  Ties with the median are admitted: on a constant-degree graph every
    candidate ties the median, and a strict comparison would reject all of
    them forever once the tier fills — silently degrading the policy to
    ``static-degree`` (regression-pinned by the constant-degree test).
    """

    name = "degree-weighted"

    def admit(self, tier: "CacheTier", candidate_ids: np.ndarray,
              candidate_degrees: np.ndarray) -> np.ndarray:
        free = tier.capacity - tier.size
        if free >= len(candidate_ids):
            return np.ones(len(candidate_ids), dtype=bool)
        mask = np.zeros(len(candidate_ids), dtype=bool)
        if free > 0:
            # Give the free slots to the highest-degree candidates.
            order = np.argsort(-candidate_degrees, kind="stable")
            mask[order[:free]] = True
        if tier.size:
            threshold = float(np.median(tier.resident_degrees))
            mask |= candidate_degrees >= threshold
        return mask


ADMISSION_POLICIES = Registry("admission policy")
ADMISSION_POLICIES.register("always", lambda: AlwaysAdmit(), aliases=("open",))
ADMISSION_POLICIES.register(
    "static-degree", lambda: StaticDegreeAdmission(), aliases=("static", "never")
)
ADMISSION_POLICIES.register(
    "degree-weighted", lambda: DegreeWeightedAdmission(), aliases=("degree",)
)
# Score-based admission (repro.cache.scoring): a per-node score with
# confidence bounds decides who may displace a resident.  "scored" defaults
# to the conservative mode; the explicit-mode names pin strict/bypass, and
# "scored-online" adds the end-of-epoch weight learner.
ADMISSION_POLICIES.register(
    "scored", lambda: ScoredAdmission(mode="conservative"),
    aliases=("scored-conservative",),
)
ADMISSION_POLICIES.register("scored-strict", lambda: ScoredAdmission(mode="strict"))
ADMISSION_POLICIES.register("scored-bypass", lambda: ScoredAdmission(mode="bypass"))
ADMISSION_POLICIES.register(
    "scored-online", lambda: ScoredAdmission(mode="conservative", online=True),
)


def build_admission_policy(name: str) -> AdmissionPolicy:
    """Build a registered admission policy by name (see :data:`ADMISSION_POLICIES`)."""
    return ADMISSION_POLICIES.build(name)


# --------------------------------------------------------------------------- #
# Eviction (victim selection)
# --------------------------------------------------------------------------- #
class CacheEvictionPolicy(Protocol):
    """Selects which resident rows leave a full tier."""

    name: str

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        """Indices (into the tier's resident arrays) of up to *num_victims* victims."""
        ...


class NoEviction:
    """Never evict: inserts beyond capacity are rejected instead."""

    name = "none"

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)


class LRUEviction:
    """Evict the rows hit least recently (ties broken by resident order)."""

    name = "lru"

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        order = np.argsort(tier.resident_last_access, kind="stable")
        return order[:num_victims].astype(np.int64)


class LFUEviction:
    """Evict the rows hit least often (ties broken by least recent access)."""

    name = "lfu"

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        order = np.lexsort((tier.resident_last_access, tier.resident_freq))
        return order[:num_victims].astype(np.int64)


class ClockEviction:
    """Second-chance (CLOCK): sweep a hand, clearing reference bits until
    enough unreferenced rows are found.

    The hand position persists across eviction rounds on the tier itself, so
    repeated rounds continue the sweep instead of restarting — the property
    that makes CLOCK approximate LRU at a fraction of the bookkeeping.
    """

    name = "clock"

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        size = tier.size
        if size == 0 or num_victims <= 0:
            return np.zeros(0, dtype=np.int64)
        num_victims = min(num_victims, size)
        ref = tier.resident_ref
        victims: set = set()
        hand = tier.clock_hand % size
        # Two full sweeps suffice: the first clears bits, the second must find
        # victims since every row it revisits is now unreferenced.  Already-
        # collected slots are skipped so the victim set never holds duplicates
        # (a duplicate would make the tier's resize/admit remove fewer rows
        # than requested and break the size <= capacity invariant).
        for _ in range(2 * size):
            if len(victims) == num_victims:
                break
            if ref[hand]:
                ref[hand] = False
            else:
                victims.add(hand)
            hand = (hand + 1) % size
        tier.clock_hand = hand
        return np.asarray(sorted(victims), dtype=np.int64)


class DegreeWeightedEviction:
    """Evict the lowest-degree rows first (retain hubs, the Fig. 10 regime)."""

    name = "degree-weighted"

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        order = np.argsort(tier.resident_degrees, kind="stable")
        return order[:num_victims].astype(np.int64)


CACHE_EVICTION_POLICIES = Registry("cache eviction policy")
CACHE_EVICTION_POLICIES.register("none", lambda: NoEviction(), aliases=("static-degree",))
CACHE_EVICTION_POLICIES.register("lru", lambda: LRUEviction())
CACHE_EVICTION_POLICIES.register("lfu", lambda: LFUEviction())
CACHE_EVICTION_POLICIES.register("clock", lambda: ClockEviction(), aliases=("second-chance",))
CACHE_EVICTION_POLICIES.register(
    "degree-weighted", lambda: DegreeWeightedEviction(), aliases=("degree",)
)
CACHE_EVICTION_POLICIES.register(
    "scored", lambda: ScoredEviction(), aliases=("lowest-upper-bound",)
)


def build_cache_eviction_policy(name: str) -> CacheEvictionPolicy:
    """Build a registered eviction policy by name (see :data:`CACHE_EVICTION_POLICIES`)."""
    return CACHE_EVICTION_POLICIES.build(name)
