"""The tiered cache stack: ordered tiers in front of a miss handler.

:class:`TieredFeatureCache` chains :class:`~repro.cache.tier.CacheTier`\\ s —
typically a small per-trainer **hot** tier backed by a larger machine-shared
tier — in front of a ``fetch_fn`` that resolves final misses (in this repo:
an RPC pull from the owning partition, possibly through the
:class:`~repro.distributed.rpc.BatchedRPCChannel`'s coalescing window).

Per fetch the stack walks the tiers top-down: rows found at a tier are served
there (and promoted into the tiers above it, subject to their admission
policies); rows missing everywhere are deduplicated, fetched once, and
offered to every tier on the way back up.  The per-tier hit/miss/eviction
counters come back in a :class:`CacheFetchResult`, thread through
:class:`~repro.features.source.FetchStats` into
``TrainerRunStats.cache_stats``, and surface cluster-wide via
:meth:`~repro.training.cluster_engine.ClusterReport.mean_tier_hit_rates` —
identically under the lockstep and event-driven engines, since both collect
trainer stats through the same shared helpers.  Capacity re-splitting between
a trainer's hot tier and its machine-shared contribution is the
:class:`~repro.cache.controller.AdaptiveCapacityController`'s job, driven by
the per-epoch interval hit rates recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cache.tier import CacheTier
from repro.utils.validation import check_1d_int_array

# ids -> (rows, simulated_time_s, bytes_fetched); the stack treats the miss
# handler as opaque, so it can be an RPC channel, a disk tier, or a test stub.
MissFetcher = Callable[[np.ndarray], Tuple[np.ndarray, float, int]]


@dataclass
class CacheFetchResult:
    """Outcome of one :meth:`TieredFeatureCache.fetch` call."""

    num_requested: int = 0
    num_hits: int = 0                  # rows served from any tier
    num_misses: int = 0                # rows that had to be fetched below the stack
    fetched_rows: int = 0              # unique rows pulled by the miss handler
    fetch_time_s: float = 0.0
    bytes_fetched: int = 0
    lookup_nodes: int = 0              # membership tests across all tiers
    per_tier: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def tier_counters(self) -> Dict[str, float]:
        """Flat ``{tier}.{counter}`` dict for FetchStats threading."""
        out: Dict[str, float] = {}
        for tier_name, counters in self.per_tier.items():
            for key, value in counters.items():
                out[f"{tier_name}.{key}"] = float(value)
        return out


class TieredFeatureCache:
    """Ordered cache tiers over a miss handler, fetched as one unit."""

    def __init__(self, tiers: List[CacheTier], fetch_fn: MissFetcher, feature_dim: int):
        if not tiers:
            raise ValueError("a tiered cache needs at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique, got {names}")
        self.tiers = list(tiers)
        self.fetch_fn = fetch_fn
        self.feature_dim = int(feature_dim)

    # ------------------------------------------------------------------ #
    def fetch(self, global_ids: np.ndarray, step: int) -> Tuple[np.ndarray, CacheFetchResult]:
        """Assemble rows for *global_ids* (aligned), recording per-tier costs."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        result = CacheFetchResult(num_requested=int(len(global_ids)))
        rows = np.zeros((len(global_ids), self.feature_dim), dtype=np.float32)
        remaining = np.arange(len(global_ids), dtype=np.int64)

        # Hits at a lower tier are promoted into the tiers above it, so hot
        # rows migrate toward the cheapest level (admission policies decide).
        promotions: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for level, tier in enumerate(self.tiers):
            hit_mask, hit_rows = tier.lookup(global_ids[remaining], step)
            result.lookup_nodes += int(len(remaining))
            delta = {
                "hits": int(hit_mask.sum()),
                "misses": int((~hit_mask).sum()),
                "evictions": 0,
                "admissions": 0,
            }
            result.per_tier[tier.name] = delta
            if delta["hits"]:
                hit_positions = remaining[hit_mask]
                rows[hit_positions] = hit_rows
                if level > 0:
                    promotions.append((level, global_ids[hit_positions], hit_rows))
            remaining = remaining[~hit_mask]
            if len(remaining) == 0:
                # Later tiers see no traffic for this call; record zeroes so
                # the per-tier schema is stable across calls.
                for lower in self.tiers[level + 1:]:
                    result.per_tier[lower.name] = {
                        "hits": 0, "misses": 0, "evictions": 0, "admissions": 0,
                    }
                break

        result.num_hits = int(result.num_requested - len(remaining))
        result.num_misses = int(len(remaining))
        if len(remaining):
            unique_missing = np.unique(global_ids[remaining])
            fetched, fetch_time, bytes_fetched = self.fetch_fn(unique_missing)
            rows[remaining] = fetched[
                np.searchsorted(unique_missing, global_ids[remaining])
            ]
            result.fetched_rows = int(len(unique_missing))
            result.fetch_time_s = float(fetch_time)
            result.bytes_fetched = int(bytes_fetched)
            self._offer(self.tiers, unique_missing, fetched, step, result)
        for level, promo_ids, promo_rows in promotions:
            self._offer(self.tiers[:level], promo_ids, promo_rows, step, result)
        return rows, result

    # ------------------------------------------------------------------ #
    def end_epoch(self) -> None:
        """Epoch boundary hook: steps every tier's scorer (controllers attach
        via the owning source)."""
        for tier in self.tiers:
            tier.end_epoch()

    def nbytes(self) -> int:
        return int(sum(tier.nbytes() for tier in self.tiers))

    @property
    def total_capacity(self) -> int:
        return int(sum(tier.capacity for tier in self.tiers))

    @property
    def total_resident(self) -> int:
        return int(sum(tier.size for tier in self.tiers))

    def summary(self) -> Dict[str, float]:
        """Flat cumulative per-tier counters, keys prefixed ``tier.{name}.``."""
        out: Dict[str, float] = {}
        for tier in self.tiers:
            for key, value in tier.summary().items():
                out[f"tier.{tier.name}.{key}"] = float(value)
        return out

    # ------------------------------------------------------------------ #
    def _offer(self, tiers: List[CacheTier], ids: np.ndarray, rows: np.ndarray,
               step: int, result: CacheFetchResult) -> None:
        for tier in tiers:
            evictions_before = tier.stats.evictions
            admitted = tier.admit(ids, rows, step)
            counters = result.per_tier.setdefault(
                tier.name, {"hits": 0, "misses": 0, "evictions": 0, "admissions": 0}
            )
            counters["admissions"] += int(admitted)
            counters["evictions"] += int(tier.stats.evictions - evictions_before)
