"""Configuration of the tiered feature cache.

The defaults reproduce the pre-tier single static cache *exactly*: one
per-trainer tier, ``static-degree`` admission (population fixed at the
degree-ranked preload), no eviction, no adaptation.  Every knob is a registry
name or a bounded number, validated eagerly so a typo fails at construction
— the same contract :class:`~repro.core.config.PrefetchConfig` follows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.utils.validation import check_fraction

MAX_TIERS = 2  # hot (per trainer) + shared (per machine)


@dataclass(frozen=True)
class CacheConfig:
    """Parameters of the tiered feature cache.

    ``tiers`` selects the stack shape: ``1`` is the per-trainer hot tier
    alone, ``2`` adds the machine-shared tier between the hot tier and the
    RPC channel.  ``hot_fraction`` splits the trainer's row budget between
    the two (ignored with one tier).  ``admission``/``eviction`` name the hot
    tier's policies; the shared tier uses ``shared_admission``/
    ``shared_eviction``.  ``adaptive`` turns on the per-epoch capacity
    controller (see :class:`~repro.cache.controller.AdaptiveCapacityController`).
    ``scorer`` names the :data:`~repro.cache.scoring.SCORERS` entry built for
    tiers whose policies require one (the ``scored`` family), and
    ``record_decisions`` makes those tiers keep a :class:`ScoreRecord` ledger
    (the ``repro explain`` replay path).
    """

    tiers: int = 1
    admission: str = "static-degree"
    eviction: str = "none"
    shared_admission: str = "always"
    shared_eviction: str = "lru"
    hot_fraction: float = 0.5
    adaptive: bool = False
    min_tier_fraction: float = 0.1
    max_shift_fraction: float = 0.25
    scorer: str = "decayed"
    record_decisions: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.tiers <= MAX_TIERS:
            raise ValueError(f"tiers must be in [1, {MAX_TIERS}], got {self.tiers}")
        if self.adaptive and self.tiers < 2:
            raise ValueError(
                "adaptive capacity control re-splits the budget between two "
                "tiers; it requires tiers=2 (hot + machine-shared)"
            )
        check_fraction(self.hot_fraction, "hot_fraction")
        check_fraction(self.min_tier_fraction, "min_tier_fraction")
        check_fraction(self.max_shift_fraction, "max_shift_fraction")
        # Resolve registry names eagerly (lazy imports: policies sit above
        # nothing, but keep symmetry with PrefetchConfig's validation).
        from repro.cache.policies import ADMISSION_POLICIES, CACHE_EVICTION_POLICIES
        from repro.cache.scoring import SCORERS

        object.__setattr__(self, "scorer", SCORERS.resolve(self.scorer))
        object.__setattr__(self, "admission", ADMISSION_POLICIES.resolve(self.admission))
        object.__setattr__(self, "eviction", CACHE_EVICTION_POLICIES.resolve(self.eviction))
        object.__setattr__(
            self, "shared_admission", ADMISSION_POLICIES.resolve(self.shared_admission)
        )
        object.__setattr__(
            self, "shared_eviction", CACHE_EVICTION_POLICIES.resolve(self.shared_eviction)
        )

    # ------------------------------------------------------------------ #
    @property
    def is_default_single_tier(self) -> bool:
        """True when the config is numerically the pre-tier static cache."""
        return (
            self.tiers == 1
            and self.admission == "static-degree"
            and self.eviction == "none"
            and not self.adaptive
        )

    def split_budget(self, total_budget: int) -> Tuple[int, int]:
        """(hot_capacity, shared_contribution) for a trainer budget of rows."""
        total_budget = max(0, int(total_budget))
        if self.tiers == 1:
            return total_budget, 0
        hot = int(round(self.hot_fraction * total_budget))
        hot = max(0, min(total_budget, hot))
        return hot, total_budget - hot

    def with_overrides(self, **overrides) -> "CacheConfig":
        """A copy with selected fields replaced; ``None`` values are ignored."""
        filtered = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **filtered)

    def describe(self) -> str:
        if self.tiers == 1:
            return f"1 tier, admission={self.admission}, eviction={self.eviction}"
        adaptive = ", adaptive" if self.adaptive else ""
        return (
            f"2 tiers (hot {self.admission}/{self.eviction}, "
            f"shared {self.shared_admission}/{self.shared_eviction}, "
            f"hot_fraction={self.hot_fraction}{adaptive})"
        )
