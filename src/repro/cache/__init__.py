"""``repro.cache``: the tiered, policy-pluggable feature-cache subsystem.

Composes :class:`~repro.cache.tier.CacheTier` levels (a per-trainer hot tier
plus an optional machine-shared tier) into a
:class:`~repro.cache.stack.TieredFeatureCache` that sits in front of the RPC
miss path, with string-keyed admission/eviction policy registries and an
adaptive per-epoch capacity controller.  See README.md § Caching.
"""

from repro.cache.config import CacheConfig
from repro.cache.controller import AdaptiveCapacityController, CapacityAdjustment
from repro.cache.policies import (
    ADMISSION_POLICIES,
    CACHE_EVICTION_POLICIES,
    build_admission_policy,
    build_cache_eviction_policy,
)
from repro.cache.scoring import (
    SCORERS,
    DecisionLog,
    PrefetchScorer,
    ScoredAdmission,
    ScoredEviction,
    ScoreRecord,
    build_scorer,
    capture_decisions,
)
from repro.cache.stack import CacheFetchResult, TieredFeatureCache
from repro.cache.tier import CacheTier, TierStats

__all__ = [
    "ADMISSION_POLICIES",
    "CACHE_EVICTION_POLICIES",
    "SCORERS",
    "AdaptiveCapacityController",
    "CacheConfig",
    "CacheFetchResult",
    "CacheTier",
    "CapacityAdjustment",
    "DecisionLog",
    "PrefetchScorer",
    "ScoreRecord",
    "ScoredAdmission",
    "ScoredEviction",
    "TierStats",
    "TieredFeatureCache",
    "build_scorer",
    "build_admission_policy",
    "build_cache_eviction_policy",
    "capture_decisions",
]
