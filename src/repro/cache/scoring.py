"""Score-based cache admission/eviction with confidence bounds.

The static tier policies (``static-degree``, ``degree-weighted``) decide from
one frozen feature — degree rank — which the hot-set-drift workloads show is a
weak predictor of a moving working set.  This module replaces the frozen
heuristic with a learned, debuggable scoring layer:

* :class:`PrefetchScorer` maintains **decayed per-node access statistics**
  (recency, frequency, degree, halo distance; no external deps) and computes
  a per-node score in ``[0, 1]`` together with **lower/upper confidence
  bounds** — a UCB-style width that shrinks as a node accumulates decayed
  observations and regrows as they decay away.
* :class:`ScoredAdmission` admits a candidate when its bound clears the
  resident-score threshold (a low quantile of the resident scores), under one
  of three modes: ``strict`` compares the candidate's *lower* bound (admit
  only on strong evidence), ``conservative`` its *upper* bound (admit on
  plausible evidence), and ``bypass`` admits everything.  By construction
  ``strict`` admits a subset of ``conservative`` admits a subset of
  ``bypass`` — the monotonicity property the tests pin.
* :class:`ScoredEviction` evicts the residents with the **lowest upper
  bound** — optimism in the face of uncertainty: a row we know little about
  keeps its slot over a row we are confident is cold.
* The **online-learned variant** (``scored-online``) re-weights the scorer's
  features at every epoch boundary from the interval's observed hit/miss
  feature averages, shifting weight toward whichever features discriminated
  hits from misses in the last interval.

Every admit/reject/evict decision can be recorded as a :class:`ScoreRecord`
(score, bounds, threshold, mode, reason) in the owning tier's ledger; the
``repro explain`` CLI replays a run inside :func:`capture_decisions` and
prints the ledger entries for any node id.  Recording is pure observation —
decisions are identical whether or not the ledger is enabled — and the ledger
itself is bit-identical across same-seed replays.

Custom scorers register in :data:`SCORERS` (see docs/EXTENDING.md) and are
selected per-tier via :class:`~repro.cache.config.CacheConfig`'s ``scorer``
field.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.tier import CacheTier

FEATURE_NAMES = ("recency", "frequency", "degree", "halo_distance")

DistanceLookup = Callable[[np.ndarray], np.ndarray]


# --------------------------------------------------------------------------- #
# Decision records + capture
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScoreRecord:
    """One scored admission/eviction decision for one node.

    ``action`` is ``"admit"``, ``"reject"``, or ``"evict"``; ``threshold`` is
    the resident-score threshold the bound was compared against (``nan`` when
    no comparison happened, e.g. free capacity or ``bypass``); ``reason`` is a
    short human-readable clause the ``repro explain`` CLI prints verbatim.
    """

    step: int
    node_id: int
    action: str
    tier: str
    score: float
    lower_bound: float
    upper_bound: float
    threshold: float
    mode: str
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "node_id": self.node_id,
            "action": self.action,
            "tier": self.tier,
            "score": self.score,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "threshold": self.threshold,
            "mode": self.mode,
            "reason": self.reason,
        }

    def as_tuple(self) -> Tuple:
        """Canonical tuple for bit-identical ledger comparison in tests."""
        return (
            self.step, self.node_id, self.action, self.tier, self.score,
            self.lower_bound, self.upper_bound, self.threshold, self.mode,
            self.reason,
        )


class DecisionLog:
    """All scored tiers constructed while a capture session is active.

    ``repro explain`` opens a session with :func:`capture_decisions`, replays
    the run, and reads every registered tier's ledger afterwards.  Tiers are
    listed in construction order, which is deterministic (trainers are built
    in rank order), so the (tier_index, record) stream is replay-stable.
    """

    def __init__(self) -> None:
        self.tiers: List["CacheTier"] = []

    def register(self, tier: "CacheTier") -> None:
        self.tiers.append(tier)

    def all_records(self) -> List[Tuple[int, ScoreRecord]]:
        """Every recorded decision as ``(tier_index, record)``, replay order."""
        out: List[Tuple[int, ScoreRecord]] = []
        for index, tier in enumerate(self.tiers):
            for record in tier.ledger:
                out.append((index, record))
        return out

    def records_for(self, node_id: int) -> List[Tuple[int, ScoreRecord]]:
        """The decisions that involved *node_id*, in replay order."""
        return [(i, r) for i, r in self.all_records() if r.node_id == int(node_id)]

    def decision_counts(self) -> Dict[int, int]:
        """``{node_id: number of recorded decisions}`` across all tiers."""
        counts: Dict[int, int] = {}
        for _, record in self.all_records():
            counts[record.node_id] = counts.get(record.node_id, 0) + 1
        return counts


_ACTIVE_LOG: Optional[DecisionLog] = None


def active_decision_log() -> Optional[DecisionLog]:
    """The capture session in effect, if any (tiers self-register into it)."""
    return _ACTIVE_LOG


@contextmanager
def capture_decisions() -> Iterator[DecisionLog]:
    """Context manager: record scored decisions of every tier built inside.

    While active, every :class:`~repro.cache.tier.CacheTier` constructed with
    a scored policy registers itself and enables its ledger, regardless of the
    config's ``record_decisions`` flag — the seam ``repro explain`` uses to
    observe a replay without altering its decisions.
    """
    global _ACTIVE_LOG
    if _ACTIVE_LOG is not None:
        raise RuntimeError("capture_decisions() sessions do not nest")
    log = DecisionLog()
    _ACTIVE_LOG = log
    try:
        yield log
    finally:
        _ACTIVE_LOG = None


# --------------------------------------------------------------------------- #
# The scorer
# --------------------------------------------------------------------------- #
class PrefetchScorer:
    """Per-node scores with confidence bounds from decayed access statistics.

    For node *i* at step *t* the scorer derives four features in ``[0, 1]``:

    * ``recency``  — ``decay ** (t - last_access_i)`` (1 when just accessed);
    * ``frequency`` — ``c_i / (c_i + 1)`` where ``c_i`` is the decayed access
      count (``c_i <- c_i * decay**dt + occurrences`` on access);
    * ``degree`` — ``deg_i / (deg_i + degree_scale)`` (saturating hub bonus);
    * ``halo_distance`` — ``1 / distance_i`` from the optional distance
      lookup (1-hop halo rows score 1.0; farther or unknown rows less).

    ``score = w . features`` with weights normalized to sum 1, so the score
    lives in ``[0, 1]``.  The confidence width is UCB-style,
    ``confidence * sqrt(log(t + 2) / (c_i + 1))``: tight for nodes with many
    recent (decayed) observations, wide for cold or long-unseen nodes.
    ``lower = max(0, score - width)`` and ``upper = min(1, score + width)``,
    so ``lower <= score <= upper`` always.

    With ``online=True``, :meth:`end_epoch` nudges the weights toward the
    features that discriminated interval hits from interval misses — a
    deterministic, dependency-free learned variant.

    The defaults lean on degree (the paper's Fig. 10 signal) with recency and
    frequency as adaptive tiebreaks, and keep the confidence width small so
    decisions are score-driven rather than exploration-driven — the setting
    where the scored policy beats both pure degree heuristics on the
    ``hot-set-drift``/``cache-churn`` benchmarks instead of degenerating into
    LRU (wide bounds make every cold node look admissible and every
    well-observed resident look evictable).
    """

    name = "decayed"

    def __init__(
        self,
        decay: float = 0.95,
        confidence: float = 0.01,
        weights: Tuple[float, float, float, float] = (0.1, 0.1, 0.75, 0.05),
        degree_scale: float = 16.0,
        threshold_quantile: float = 0.3,
        learning_rate: float = 0.3,
        online: bool = False,
        distance_of: Optional[DistanceLookup] = None,
    ):
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if confidence < 0.0:
            raise ValueError(f"confidence must be >= 0, got {confidence}")
        if len(weights) != len(FEATURE_NAMES):
            raise ValueError(f"need {len(FEATURE_NAMES)} feature weights, got {len(weights)}")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with a positive sum")
        if not 0.0 <= threshold_quantile <= 1.0:
            raise ValueError(f"threshold_quantile must be in [0, 1], got {threshold_quantile}")
        if not 0.0 <= learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in [0, 1], got {learning_rate}")
        self.decay = float(decay)
        self.confidence = float(confidence)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.weights /= self.weights.sum()
        self.degree_scale = float(degree_scale)
        self.threshold_quantile = float(threshold_quantile)
        self.learning_rate = float(learning_rate)
        self.online = bool(online)
        self.distance_of = distance_of
        self.epochs_learned = 0

        self._ids = np.zeros(0, dtype=np.int64)        # sorted
        self._count = np.zeros(0, dtype=np.float64)    # decayed access count
        self._last_step = np.zeros(0, dtype=np.int64)
        self._step = 0                                 # latest observed step
        # Online-learning accumulators: per-feature sums over the interval.
        self._hit_feature_sum = np.zeros(len(FEATURE_NAMES), dtype=np.float64)
        self._miss_feature_sum = np.zeros(len(FEATURE_NAMES), dtype=np.float64)
        self._hit_obs = 0
        self._miss_obs = 0

    # ------------------------------------------------------------------ #
    @property
    def num_tracked(self) -> int:
        return int(len(self._ids))

    def decayed_count(self, global_ids: np.ndarray, step: Optional[int] = None) -> np.ndarray:
        """The decayed access count of each id as of *step* (0 for unseen ids)."""
        step = self._step if step is None else int(step)
        idx, known = self._locate(np.asarray(global_ids, dtype=np.int64))
        out = np.zeros(len(idx), dtype=np.float64)
        if known.any():
            dt = np.maximum(0, step - self._last_step[idx[known]])
            out[known] = self._count[idx[known]] * self.decay ** dt
        return out

    # ------------------------------------------------------------------ #
    def observe(self, global_ids: np.ndarray, step: int, hit_mask: np.ndarray) -> None:
        """Fold one lookup's access stream into the decayed statistics.

        Called by the owning tier on every :meth:`~repro.cache.tier.CacheTier.
        lookup`; *hit_mask* marks which requested rows the tier served (the
        online learner's supervision signal).  Statistics update from the
        request stream itself — misses are observations too, which is what
        lets a not-yet-resident node build up a score worth admitting.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if len(global_ids) == 0:
            return
        step = int(step)
        self._step = max(self._step, step)
        if self.online:
            # Feature snapshot BEFORE the update: the decision-relevant view.
            features = self._features(global_ids, step)
            hits = np.asarray(hit_mask, dtype=bool)
            self._hit_feature_sum += features[hits].sum(axis=0)
            self._miss_feature_sum += features[~hits].sum(axis=0)
            self._hit_obs += int(hits.sum())
            self._miss_obs += int((~hits).sum())

        unique, occurrences = np.unique(global_ids, return_counts=True)
        idx, known = self._locate(unique)
        if not known.all():
            self._grow(unique[~known])
            idx, known = self._locate(unique)
        dt = np.maximum(0, step - self._last_step[idx])
        self._count[idx] = self._count[idx] * self.decay ** dt + occurrences
        self._last_step[idx] = step

    def score(self, global_ids: np.ndarray,
              step: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(score, lower_bound, upper_bound)`` arrays for *global_ids*."""
        global_ids = np.asarray(global_ids, dtype=np.int64)
        step = self._step if step is None else int(step)
        features = self._features(global_ids, step)
        scores = features @ self.weights
        counts = self.decayed_count(global_ids, step)
        width = self.confidence * np.sqrt(math.log(step + 2) / (counts + 1.0))
        lower = np.maximum(0.0, scores - width)
        upper = np.minimum(1.0, scores + width)
        return scores, lower, upper

    def resident_threshold(self, resident_ids: np.ndarray,
                           step: Optional[int] = None) -> float:
        """The resident-score admission threshold (a low resident quantile).

        Candidates must look at least as promising as the tier's weakest
        decile to displace a resident; an empty tier has nothing to defend
        and thresholds at 0.
        """
        if len(resident_ids) == 0:
            return 0.0
        scores, _, _ = self.score(resident_ids, step)
        return float(np.quantile(scores, self.threshold_quantile))

    # ------------------------------------------------------------------ #
    def end_epoch(self) -> Optional[np.ndarray]:
        """Online weight update from the interval's hit/miss feature averages.

        Shifts weight toward features whose interval mean was higher among
        hits than among misses (the features that *predicted* residency being
        worthwhile), then renormalizes.  Returns the new weights, or ``None``
        when learning is off or the interval carried no traffic — which also
        makes the hook idempotent when several trainers share one scorer
        through a machine-shared tier (the first caller consumes the
        interval, later callers see it empty).
        """
        had_traffic = (self._hit_obs + self._miss_obs) > 0
        if not had_traffic:
            return None
        hit_mean = (self._hit_feature_sum / self._hit_obs
                    if self._hit_obs else np.zeros(len(FEATURE_NAMES)))
        miss_mean = (self._miss_feature_sum / self._miss_obs
                     if self._miss_obs else np.zeros(len(FEATURE_NAMES)))
        self._hit_feature_sum[:] = 0.0
        self._miss_feature_sum[:] = 0.0
        self._hit_obs = 0
        self._miss_obs = 0
        if not self.online:
            return None
        # Positive part of the discrimination, floored so no weight dies.
        advantage = np.maximum(hit_mean - miss_mean, 0.0) + 1e-3
        target = advantage / advantage.sum()
        self.weights = (1.0 - self.learning_rate) * self.weights + self.learning_rate * target
        self.weights /= self.weights.sum()
        self.epochs_learned += 1
        return self.weights.copy()

    def nbytes(self) -> int:
        return int(self._ids.nbytes + self._count.nbytes + self._last_step.nbytes)

    # ------------------------------------------------------------------ #
    def _locate(self, unique_sorted_or_any: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(indices into the tracked arrays, known-mask) for the given ids."""
        if len(self._ids) == 0 or len(unique_sorted_or_any) == 0:
            return (np.zeros(len(unique_sorted_or_any), dtype=np.int64),
                    np.zeros(len(unique_sorted_or_any), dtype=bool))
        idx = np.minimum(np.searchsorted(self._ids, unique_sorted_or_any),
                         len(self._ids) - 1)
        known = self._ids[idx] == unique_sorted_or_any
        return idx, known

    def _grow(self, new_ids: np.ndarray) -> None:
        at = np.searchsorted(self._ids, new_ids)
        self._ids = np.insert(self._ids, at, new_ids)
        self._count = np.insert(self._count, at, 0.0)
        self._last_step = np.insert(self._last_step, at, self._step)

    def _features(self, global_ids: np.ndarray, step: int) -> np.ndarray:
        """The ``(n, 4)`` feature matrix (columns follow FEATURE_NAMES)."""
        n = len(global_ids)
        idx, known = self._locate(global_ids)
        recency = np.zeros(n, dtype=np.float64)
        if known.any():
            dt = np.maximum(0, step - self._last_step[idx[known]])
            recency[known] = self.decay ** dt
        counts = self.decayed_count(global_ids, step)
        frequency = counts / (counts + 1.0)
        degree = np.zeros(n, dtype=np.float64)
        if self._degree_of is not None and n:
            deg = np.asarray(self._degree_of(global_ids), dtype=np.float64)
            degree = deg / (deg + self.degree_scale)
        distance = np.ones(n, dtype=np.float64)
        if self.distance_of is not None and n:
            dist = np.maximum(1.0, np.asarray(self.distance_of(global_ids), dtype=np.float64))
            distance = 1.0 / dist
        return np.column_stack([recency, frequency, degree, distance])

    # The degree lookup is bound by the owning tier at construction so one
    # scorer definition serves tiers over different partitions.
    _degree_of: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def bind_degree_lookup(self, degree_of: Optional[Callable[[np.ndarray], np.ndarray]]) -> None:
        """Attach the owning tier's global-id -> degree lookup."""
        self._degree_of = degree_of


SCORERS = Registry("cache scorer")
SCORERS.register("decayed", PrefetchScorer, aliases=("default", "ucb"))


def build_scorer(name: str, **kwargs) -> PrefetchScorer:
    """Build a registered scorer by name (see :data:`SCORERS`)."""
    return SCORERS.build(name, **kwargs)


# --------------------------------------------------------------------------- #
# Scored policies (registered in repro.cache.policies)
# --------------------------------------------------------------------------- #
ADMISSION_MODES = ("strict", "conservative", "bypass")


class ScoredAdmission:
    """Admit when the candidate's confidence bound clears the resident threshold.

    ``strict`` compares the candidate's **lower** bound against the threshold
    (admit only rows we are confident are hot), ``conservative`` its **upper**
    bound (admit rows that merely might be hot), ``bypass`` admits everything.
    Since ``lower <= upper``, every ``strict`` admit is a ``conservative``
    admit and every ``conservative`` admit is a ``bypass`` admit.  Free
    capacity short-circuits the comparison: empty slots cost nothing to fill.
    """

    requires_scorer = True

    def __init__(self, mode: str = "conservative", online: bool = False):
        if mode not in ADMISSION_MODES:
            raise ValueError(f"mode must be one of {ADMISSION_MODES}, got {mode!r}")
        self.mode = mode
        self.online = bool(online)
        self.name = "scored-online" if online else "scored"

    def admit(self, tier: "CacheTier", candidate_ids: np.ndarray,
              candidate_degrees: np.ndarray) -> np.ndarray:
        scorer = tier.scorer
        assert scorer is not None, "scored admission requires a tier scorer"
        step = tier.last_step
        scores, lower, upper = scorer.score(candidate_ids, step)
        free = tier.capacity - tier.size

        if free >= len(candidate_ids):
            mask = np.ones(len(candidate_ids), dtype=bool)
            tier.record_decisions_batch(
                step, candidate_ids, mask, scores, lower, upper,
                threshold=math.nan, mode=self.mode,
                admit_reason="free capacity covers the whole offer",
                reject_reason="",
            )
            return mask

        threshold = scorer.resident_threshold(tier.resident_ids, step)
        if self.mode == "bypass":
            mask = np.ones(len(candidate_ids), dtype=bool)
            reason = "bypass mode admits every candidate"
        elif self.mode == "strict":
            mask = lower >= threshold
            reason = "lower bound clears the resident-score threshold"
        else:  # conservative
            mask = upper >= threshold
            reason = "upper bound clears the resident-score threshold"
        if free > 0 and not mask.all():
            # Mode-independent: free slots go to the best-scoring leftovers,
            # so strict/conservative/bypass admit sets stay nested.
            rejected = np.flatnonzero(~mask)
            order = np.lexsort((rejected, -scores[rejected]))
            mask[rejected[order[:free]]] = True
        bound = "lower" if self.mode == "strict" else "upper"
        tier.record_decisions_batch(
            step, candidate_ids, mask, scores, lower, upper,
            threshold=threshold, mode=self.mode,
            admit_reason=reason,
            reject_reason=f"{bound} bound below the resident-score threshold",
        )
        return mask


class ScoredEviction:
    """Evict the residents with the lowest upper confidence bound.

    Keeping the row whose upper bound is higher is the optimistic choice: a
    cold-looking row with wide bounds may just be under-observed, while a
    cold-looking row with tight bounds is genuinely cold.  Ties break by
    resident order for determinism.
    """

    name = "scored"
    requires_scorer = True

    def select(self, tier: "CacheTier", num_victims: int) -> np.ndarray:
        size = tier.size
        if size == 0 or num_victims <= 0:
            return np.zeros(0, dtype=np.int64)
        scorer = tier.scorer
        assert scorer is not None, "scored eviction requires a tier scorer"
        step = tier.last_step
        resident = tier.resident_ids
        scores, lower, upper = scorer.score(resident, step)
        order = np.lexsort((np.arange(size), upper))
        victims = order[:min(num_victims, size)].astype(np.int64)
        if tier.recording:
            for v in victims:
                tier.record_decision(ScoreRecord(
                    step=int(step), node_id=int(resident[v]), action="evict",
                    tier=tier.name, score=float(scores[v]),
                    lower_bound=float(lower[v]), upper_bound=float(upper[v]),
                    threshold=math.nan, mode="evict-lowest-upper-bound",
                    reason="lowest upper bound among residents",
                ))
        return victims
